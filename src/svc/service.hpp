// The in-process serving facade: canon -> cache -> scheduler -> BatchSolver.
//
// Service is what an embedding server (or the ttp_serve daemon) holds one
// of. A request flows through four stages, each wrapped in an obs span when
// tracing is on and counted in the service's own always-on MetricsRegistry:
//
//   svc.canon   canonicalize the instance (sort/normalize/hash)
//   svc.cache   sharded LRU lookup by canonical key
//   svc.queue   singleflight join + micro-batch queue (misses only)
//   svc.solve   BatchSolver::solve_many over the drained micro-batch
//
// Responses are translated back into the requester's coordinate system: the
// cached tree's action indices are remapped through the canonicalization
// permutation and the canonical cost is multiplied by the request's weight
// scale, so callers never see the canonical form.
//
// solve() is the blocking convenience; submit() returns a Pending handle so
// a connection handler can pipeline many requests into one micro-batch
// before waiting.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/quantiles.hpp"
#include "store/store.hpp"
#include "svc/cache.hpp"
#include "svc/canon.hpp"
#include "svc/scheduler.hpp"
#include "tt/instance.hpp"
#include "tt/tree.hpp"

namespace ttp::svc {

/// How the cache participated in a response.
enum class CacheOutcome {
  kHit,       ///< Served from the procedure cache.
  kMiss,      ///< This request led a kernel solve.
  kInflight,  ///< Joined another request's in-flight solve (singleflight).
  kStore,     ///< LRU miss served from the durable store (no kernel solve).
  kNone,      ///< Rejected/errored before the cache mattered.
};

std::string_view cache_outcome_name(CacheOutcome o) noexcept;

/// Request-scoped telemetry knobs (the tentpole's serving-side config).
struct TelemetryConfig {
  /// Slow-request capture threshold in milliseconds: a request whose e2e
  /// latency reaches this dumps its flight record + span tree as one JSONL
  /// line. 0 captures everything; -1 defers to the TTP_SLOW_MS environment
  /// variable (unset -> capture disabled).
  int slow_ms = -1;
  /// Where slow-request JSONL lines go; empty = stderr.
  std::string slow_log;
  /// Flight-recorder ring size (rounded up to a power of two, min 8).
  std::size_t flight_capacity = 4096;
};

struct ServiceConfig {
  CacheConfig cache;
  SchedulerConfig scheduler;
  TelemetryConfig telemetry;
  /// Durable second tier (docs/store.md). Off unless store.dir is set; when
  /// on, LRU misses consult the store before scheduling a solve, and every
  /// solved procedure is appended write-behind.
  store::StoreConfig store;
  std::size_t workers = 0;  ///< BatchSolver pool width; 0 = hardware.
};

struct Response {
  Status status = Status::kError;
  CacheOutcome cache = CacheOutcome::kNone;
  double cost = 0.0;  ///< Expected cost in the request's weight scale.
  tt::Tree tree;      ///< Action indices refer to the request's actions.
  std::string error;  ///< Set when status != kOk.
  /// Request trace ID: minted at admission, threaded through the scheduler
  /// and kernel spans, replayable via `TRACE <id>` while still in the
  /// flight-recorder ring. 0 only if the request never reached submit().
  std::uint64_t trace = 0;

  bool ok() const noexcept { return status == Status::kOk; }
};

class Service {
 public:
  explicit Service(ServiceConfig cfg = {});

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// A submitted request. get() blocks until the solve (if any) completes
  /// and builds the requester-coordinate Response; ready() never blocks.
  /// get() also finalizes the request's telemetry (per-stage sketches,
  /// flight record, slow capture), so a Pending must not outlive its
  /// Service, and telemetry for an abandoned Pending is recorded at
  /// whatever point get() first runs (or never, if it never does).
  class Pending {
   public:
    Response get();
    bool ready() const;

    /// The trace ID minted for this request at admission.
    std::uint64_t trace() const noexcept { return trace_; }

   private:
    friend class Service;
    Response resolved_;           // rejections/hits/errors resolve inline
    bool is_resolved_ = false;
    std::shared_future<SolveOutcome> future_;
    std::vector<int> to_original_;
    double weight_scale_ = 1.0;
    CacheOutcome cache_ = CacheOutcome::kNone;
    // Telemetry context carried from submit() into get()'s finalize.
    Service* svc_ = nullptr;
    std::uint64_t trace_ = 0;
    std::uint64_t leader_trace_ = 0;  ///< Nonzero only for followers.
    CanonKey key_{};
    std::int64_t t0_ns_ = 0;       ///< Admission stamp (steady_now_ns).
    std::uint32_t admit_us_ = 0;   ///< Canonicalize + cache lookup.
    std::uint16_t k_ = 0;
    std::uint16_t actions_ = 0;
  };

  /// Canonicalize + cache lookup + (on miss) enqueue. Never blocks on the
  /// solve; malformed instances resolve to Status::kError.
  Pending submit(const tt::Instance& ins);

  /// submit().get() with a latency histogram (svc.request.us) around it.
  Response solve(const tt::Instance& ins);

  obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }
  ProcedureCache& cache() noexcept { return *cache_; }
  Scheduler& scheduler() noexcept { return *scheduler_; }
  /// nullptr when no durable store is configured.
  store::ProcedureStore* store() noexcept { return store_.get(); }
  const obs::FlightRecorder& flight() const noexcept { return flight_; }

  /// Human-readable metrics dump (the daemon's STATS payload).
  std::string stats_text() const;

  /// Prometheus text exposition: registry counters/gauges/histograms plus
  /// the per-stage latency summary family ttp_svc_latency_seconds
  /// {stage="admit|queue|batch|solve|respond|e2e"} (the daemon's METRICS
  /// payload).
  std::string metrics_text() const;

  /// Liveness/pressure report (the daemon's HEALTH payload): first line is
  /// "ready", "degraded" (queue depth at >= half max_queue), or "draining"
  /// (shutdown announced — load balancers should stop routing here), then
  /// key: value lines for queue depth, cache byte pressure, and workers.
  std::string health_text() const;

  /// Drain announcement, flipped by the server's SIGTERM path (atomic
  /// store, async-signal-safe): HEALTH reports "draining" from then on.
  void set_draining(bool v) noexcept {
    draining_.store(v, std::memory_order_relaxed);
  }
  bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Effective slow-capture threshold in ms (-1 = disabled) after
  /// resolving TelemetryConfig::slow_ms against TTP_SLOW_MS.
  int slow_threshold_ms() const noexcept { return slow_ms_; }

 private:
  /// Index into stage_sketches_ / the Prometheus stage label set.
  enum Stage : std::size_t {
    kAdmit = 0,
    kQueue,
    kBatch,
    kSolve,
    kRespond,
    kE2e,
    kStageCount
  };
  static const char* stage_name(std::size_t s) noexcept;

  static Response from_outcome(const SolveOutcome& outcome,
                               const std::vector<int>& to_original,
                               double weight_scale, CacheOutcome cache);

  /// Resolves a Pending inline from an already-available procedure (LRU hit
  /// or durable-store hit) and emits its flight record.
  void resolve_cached(Pending& p,
                      std::shared_ptr<const CachedProcedure> proc,
                      CacheOutcome outcome);

  /// One exit point for every request: fills the flight record's stage
  /// fields into the sketches, publishes the record, and (when the request
  /// is slow and capture is on) dumps record + span tree as JSONL.
  void finalize(const obs::FlightRecord& rec);
  void write_slow_capture(const obs::FlightRecord& rec);

  obs::MetricsRegistry metrics_;
  std::atomic<bool> draining_{false};
  obs::FlightRecorder flight_;
  obs::ShardedQuantiles stage_sketches_[kStageCount];  ///< Microseconds.
  int slow_ms_ = -1;
  std::string slow_log_path_;
  std::mutex slow_log_mu_;  ///< Serializes JSONL lines across requests.
  ServiceConfig cfg_;       ///< Kept for HEALTH (max_queue, capacity).
  std::unique_ptr<ProcedureCache> cache_;
  /// Declared before scheduler_: the scheduler holds a raw write-behind
  /// pointer, so it must be destroyed first. The store's own destructor is
  /// the drain-path flush (fsync + clean close).
  std::unique_ptr<store::ProcedureStore> store_;
  std::unique_ptr<Scheduler> scheduler_;
};

}  // namespace ttp::svc
