// The in-process serving facade: canon -> cache -> scheduler -> BatchSolver.
//
// Service is what an embedding server (or the ttp_serve daemon) holds one
// of. A request flows through four stages, each wrapped in an obs span when
// tracing is on and counted in the service's own always-on MetricsRegistry:
//
//   svc.canon   canonicalize the instance (sort/normalize/hash)
//   svc.cache   sharded LRU lookup by canonical key
//   svc.queue   singleflight join + micro-batch queue (misses only)
//   svc.solve   BatchSolver::solve_many over the drained micro-batch
//
// Responses are translated back into the requester's coordinate system: the
// cached tree's action indices are remapped through the canonicalization
// permutation and the canonical cost is multiplied by the request's weight
// scale, so callers never see the canonical form.
//
// solve() is the blocking convenience; submit() returns a Pending handle so
// a connection handler can pipeline many requests into one micro-batch
// before waiting.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "svc/cache.hpp"
#include "svc/canon.hpp"
#include "svc/scheduler.hpp"
#include "tt/instance.hpp"
#include "tt/tree.hpp"

namespace ttp::svc {

/// How the cache participated in a response.
enum class CacheOutcome {
  kHit,       ///< Served from the procedure cache.
  kMiss,      ///< This request led a kernel solve.
  kInflight,  ///< Joined another request's in-flight solve (singleflight).
  kNone,      ///< Rejected/errored before the cache mattered.
};

std::string_view cache_outcome_name(CacheOutcome o) noexcept;

struct ServiceConfig {
  CacheConfig cache;
  SchedulerConfig scheduler;
  std::size_t workers = 0;  ///< BatchSolver pool width; 0 = hardware.
};

struct Response {
  Status status = Status::kError;
  CacheOutcome cache = CacheOutcome::kNone;
  double cost = 0.0;  ///< Expected cost in the request's weight scale.
  tt::Tree tree;      ///< Action indices refer to the request's actions.
  std::string error;  ///< Set when status != kOk.

  bool ok() const noexcept { return status == Status::kOk; }
};

class Service {
 public:
  explicit Service(ServiceConfig cfg = {});

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// A submitted request. get() blocks until the solve (if any) completes
  /// and builds the requester-coordinate Response; ready() never blocks.
  class Pending {
   public:
    Response get();
    bool ready() const;

   private:
    friend class Service;
    Response resolved_;           // rejections/hits/errors resolve inline
    bool is_resolved_ = false;
    std::shared_future<SolveOutcome> future_;
    std::vector<int> to_original_;
    double weight_scale_ = 1.0;
    CacheOutcome cache_ = CacheOutcome::kNone;
  };

  /// Canonicalize + cache lookup + (on miss) enqueue. Never blocks on the
  /// solve; malformed instances resolve to Status::kError.
  Pending submit(const tt::Instance& ins);

  /// submit().get() with a latency histogram (svc.request.us) around it.
  Response solve(const tt::Instance& ins);

  obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }
  ProcedureCache& cache() noexcept { return *cache_; }
  Scheduler& scheduler() noexcept { return *scheduler_; }

  /// Human-readable metrics dump (the daemon's STATS payload).
  std::string stats_text() const;

 private:
  static Response from_outcome(const SolveOutcome& outcome,
                               const std::vector<int>& to_original,
                               double weight_scale, CacheOutcome cache);

  obs::MetricsRegistry metrics_;
  std::unique_ptr<ProcedureCache> cache_;
  std::unique_ptr<Scheduler> scheduler_;
};

}  // namespace ttp::svc
