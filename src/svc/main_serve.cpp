// ttp_serve — the test-and-treatment solver daemon.
//
//   ttp_serve                      # serve one session over stdin/stdout
//   ttp_serve --port=7070          # serve TCP via the supervised Server
//
// Both modes speak the newline-framed protocol in svc/wire.hpp (SOLVE /
// STATS / PING / QUIT) against a single shared Service, so every
// connection sees the same procedure cache and singleflight scheduler.
// The TCP front end is svc/server.{hpp,cpp}: a bounded session pool with
// per-session deadlines, load shedding, and a SIGTERM/SIGINT graceful
// drain (in-flight SOLVEs complete, idle sessions get BYE, exit 0 within
// --drain-timeout-ms).
//
// Knobs (defaults in parentheses; all values range-checked at startup):
//   --workers=N          BatchSolver pool width (hardware)
//   --cache-mb=N         procedure cache capacity in MiB (64)
//   --shards=N           cache shards, rounded to a power of two (8)
//   --ttl-ms=N           cache entry TTL, 0 = never expire (0)
//   --max-k=N            admission: dense-solver k ceiling (20)
//   --max-actions=N      admission: reject N above this (4096)
//   --max-sparse-k=N     admission: sparse-solver k ceiling; k in
//                        (max-k, max-sparse-k] is admitted when its
//                        reachable closure fits the sparse budget; 0
//                        disables the sparse tier (24)
//   --sparse-budget-mb=N closure-table byte budget per sparse solve (64)
//   --max-queue=N        admission: queued-leader cap (1024)
//   --max-batch=N        micro-batch size cap (32)
//   --batch-delay-us=N   micro-batch gather window (200)
//   --slow-ms=N          slow-request capture threshold; 0 = capture all,
//                        unset = defer to TTP_SLOW_MS (off when unset)
//   --slow-log=PATH      slow-request JSONL destination (stderr)
//   --flight-cap=N       flight-recorder ring size (4096)
//   --max-conns=N        TCP session cap, then ERR overload (256)
//   --idle-timeout-ms=N  eviction deadline between commands, 0 = off (60000)
//   --read-timeout-ms=N  whole-frame arrival budget, 0 = off (5000)
//   --drain-timeout-ms=N SIGTERM -> exit-0 budget (5000)
//   --max-frame-bytes=N  SOLVE body cap, then ERR oversize (1 MiB)
//   --store-dir=PATH     durable procedure store directory; unset = no
//                        second tier (docs/store.md)
//   --store-sync=MODE    store fsync policy: none | batch | always (batch)
//   --store-max-mb=N     store on-disk budget before compaction (256)
//   --store-ttl-s=N      store record TTL in seconds, 0 = never (0)
//   TTP_FAULT env        deterministic fault injection (svc/faultnet.hpp)
#include <atomic>
#include <csignal>
#include <iostream>
#include <optional>
#include <string>

#include "svc/server.hpp"
#include "svc/service.hpp"
#include "svc/wire.hpp"

namespace {

using ttp::svc::ServeArgs;
using ttp::svc::Service;

[[noreturn]] void usage(int code) {
  std::cout
      << "usage: ttp_serve [--port=N] [--workers=N] [--cache-mb=N]\n"
         "                 [--shards=N] [--ttl-ms=N] [--max-k=N]\n"
         "                 [--max-actions=N] [--max-sparse-k=N]\n"
         "                 [--sparse-budget-mb=N] [--max-queue=N]\n"
         "                 [--max-batch=N]\n"
         "                 [--batch-delay-us=N] [--slow-ms=N]\n"
         "                 [--slow-log=PATH] [--flight-cap=N]\n"
         "                 [--max-conns=N] [--idle-timeout-ms=N]\n"
         "                 [--read-timeout-ms=N] [--drain-timeout-ms=N]\n"
         "                 [--max-frame-bytes=N] [--store-dir=PATH]\n"
         "                 [--store-sync=none|batch|always]\n"
         "                 [--store-max-mb=N] [--store-ttl-s=N]\n"
         "Without --port, serves one session over stdin/stdout.\n"
         "Protocol: SOLVE\\n<instance text>\\nEND | STATS | METRICS |\n"
         "          HEALTH | TRACE <id> | PING | QUIT\n"
         "(grammar in docs/serving.md; instance format in "
         "src/tt/serialize.hpp)\n";
  std::exit(code);
}

#ifndef _WIN32

// The signal handlers only flip the Server's drain flag (an atomic store);
// the accept loop notices within one poll slice and runs the drain.
std::atomic<ttp::svc::Server*> g_server{nullptr};

void on_shutdown_signal(int) {
  if (ttp::svc::Server* server = g_server.load(std::memory_order_relaxed)) {
    server->begin_drain();
  }
}

#endif  // !_WIN32

}  // namespace

int main(int argc, char** argv) {
#ifndef _WIN32
  // A client dropping its connection mid-reply must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
#endif
  ServeArgs args;
  std::string error;
  if (!ttp::svc::parse_serve_args(argc, argv, args, error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  if (args.help) usage(0);
  // The store constructor replays segments and can fail on a bad path or
  // unreadable directory — that is a startup error, not a crash.
  std::optional<Service> svc_holder;
  try {
    svc_holder.emplace(args.cfg);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  Service& svc = *svc_holder;
  if (args.port < 0) {
    ttp::svc::SessionOptions opts;
    opts.max_frame_bytes = args.server.max_frame_bytes;
    const auto result =
        ttp::svc::serve_session(svc, std::cin, std::cout, opts);
    std::cerr << "ttp_serve: session closed after " << result.handled
              << " commands\n";
    return 0;
  }
#ifndef _WIN32
  ttp::svc::Server server(svc, args.server);
  if (!server.listen(error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  g_server.store(&server, std::memory_order_relaxed);
  std::signal(SIGTERM, on_shutdown_signal);
  std::signal(SIGINT, on_shutdown_signal);
  // First line is machine-parseable — tools (serve_smoke, chaos_client,
  // cluster_smoke) read the resolved ephemeral port from it.
  std::cerr << "LISTENING " << server.port() << "\n"
            << "ttp_serve: listening on port " << server.port() << "\n";
  const int rc = server.run();
  g_server.store(nullptr, std::memory_order_relaxed);
  std::cerr << "ttp_serve: drained, exiting\n";
  return rc;
#else
  std::cerr << "error: TCP mode is not supported on this platform\n";
  return 1;
#endif
}
