// ttp_serve — the test-and-treatment solver daemon.
//
//   ttp_serve                      # serve one session over stdin/stdout
//   ttp_serve --port=7070          # serve TCP, one thread per connection
//
// Both modes speak the newline-framed protocol in svc/wire.hpp (SOLVE /
// STATS / PING / QUIT) against a single shared Service, so every
// connection sees the same procedure cache and singleflight scheduler.
//
// Knobs (defaults in parentheses):
//   --workers=N          BatchSolver pool width (hardware)
//   --cache-mb=N         procedure cache capacity in MiB (64)
//   --shards=N           cache shards, rounded to a power of two (8)
//   --ttl-ms=N           cache entry TTL, 0 = never expire (0)
//   --max-k=N            admission: reject k above this (20)
//   --max-actions=N      admission: reject N above this (4096)
//   --max-queue=N        admission: queued-leader cap (1024)
//   --max-batch=N        micro-batch size cap (32)
//   --batch-delay-us=N   micro-batch gather window (200)
//   --slow-ms=N          slow-request capture threshold; 0 = capture all,
//                        unset = defer to TTP_SLOW_MS (off when unset)
//   --slow-log=PATH      slow-request JSONL destination (stderr)
//   --flight-cap=N       flight-recorder ring size (4096)
#include <csignal>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "svc/service.hpp"
#include "svc/wire.hpp"

namespace {

using ttp::svc::Service;
using ttp::svc::ServiceConfig;

struct Args {
  int port = -1;  ///< -1 = stdio mode.
  ServiceConfig cfg;
};

[[noreturn]] void usage(int code) {
  std::cout
      << "usage: ttp_serve [--port=N] [--workers=N] [--cache-mb=N]\n"
         "                 [--shards=N] [--ttl-ms=N] [--max-k=N]\n"
         "                 [--max-actions=N] [--max-queue=N] [--max-batch=N]\n"
         "                 [--batch-delay-us=N] [--slow-ms=N]\n"
         "                 [--slow-log=PATH] [--flight-cap=N]\n"
         "Without --port, serves one session over stdin/stdout.\n"
         "Protocol: SOLVE\\n<instance text>\\nEND | STATS | METRICS |\n"
         "          HEALTH | TRACE <id> | PING | QUIT\n"
         "(grammar in docs/serving.md; instance format in "
         "src/tt/serialize.hpp)\n";
  std::exit(code);
}

long parse_value(const std::string& arg, const char* flag) {
  const std::string prefix = std::string(flag) + "=";
  try {
    return std::stol(arg.substr(prefix.size()));
  } catch (const std::exception&) {
    std::cerr << "error: bad value in '" << arg << "'\n";
    std::exit(2);
  }
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto is = [&](const char* flag) {
      return arg.rfind(std::string(flag) + "=", 0) == 0;
    };
    if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (is("--port")) {
      a.port = static_cast<int>(parse_value(arg, "--port"));
    } else if (is("--workers")) {
      a.cfg.workers = static_cast<std::size_t>(parse_value(arg, "--workers"));
    } else if (is("--cache-mb")) {
      a.cfg.cache.capacity_bytes =
          static_cast<std::size_t>(parse_value(arg, "--cache-mb")) << 20;
    } else if (is("--shards")) {
      a.cfg.cache.shards =
          static_cast<std::size_t>(parse_value(arg, "--shards"));
    } else if (is("--ttl-ms")) {
      a.cfg.cache.ttl =
          std::chrono::milliseconds(parse_value(arg, "--ttl-ms"));
    } else if (is("--max-k")) {
      a.cfg.scheduler.max_k = static_cast<int>(parse_value(arg, "--max-k"));
    } else if (is("--max-actions")) {
      a.cfg.scheduler.max_actions =
          static_cast<int>(parse_value(arg, "--max-actions"));
    } else if (is("--max-queue")) {
      a.cfg.scheduler.max_queue =
          static_cast<std::size_t>(parse_value(arg, "--max-queue"));
    } else if (is("--max-batch")) {
      a.cfg.scheduler.max_batch =
          static_cast<std::size_t>(parse_value(arg, "--max-batch"));
    } else if (is("--batch-delay-us")) {
      a.cfg.scheduler.batch_delay =
          std::chrono::microseconds(parse_value(arg, "--batch-delay-us"));
    } else if (is("--slow-ms")) {
      a.cfg.telemetry.slow_ms =
          static_cast<int>(parse_value(arg, "--slow-ms"));
    } else if (is("--slow-log")) {
      a.cfg.telemetry.slow_log = arg.substr(std::strlen("--slow-log="));
    } else if (is("--flight-cap")) {
      a.cfg.telemetry.flight_capacity =
          static_cast<std::size_t>(parse_value(arg, "--flight-cap"));
    } else {
      std::cerr << "error: unknown argument '" << arg << "'\n";
      usage(2);
    }
  }
  return a;
}

#ifndef _WIN32

/// Minimal bidirectional streambuf over a connected socket, so the TCP path
/// reuses the exact iostream-based session handler the stdio path uses.
class FdStreamBuf final : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setg(rbuf_, rbuf_, rbuf_);
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
  }

 protected:
  int_type underflow() override {
    const ssize_t n = ::read(fd_, rbuf_, sizeof(rbuf_));
    if (n <= 0) return traits_type::eof();
    setg(rbuf_, rbuf_, rbuf_ + n);
    return traits_type::to_int_type(rbuf_[0]);
  }

  int_type overflow(int_type ch) override {
    if (sync() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override {
    const char* p = pbase();
    while (p < pptr()) {
      const ssize_t n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
      if (n <= 0) return -1;
      p += n;
    }
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
    return 0;
  }

 private:
  int fd_;
  char rbuf_[4096];
  char wbuf_[4096];
};

int serve_tcp(Service& svc, int port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("bind");
    ::close(listener);
    return 1;
  }
  if (::listen(listener, 64) < 0) {
    std::perror("listen");
    ::close(listener);
    return 1;
  }
  std::cerr << "ttp_serve: listening on port " << port << "\n";
  // A SOLVE-heavy client holds its connection; one thread per connection is
  // fine because the solving itself funnels into the shared scheduler.
  std::vector<std::thread> sessions;
  for (;;) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) break;
    sessions.emplace_back([&svc, conn] {
      FdStreamBuf buf(conn);
      std::istream in(&buf);
      std::ostream out(&buf);
      ttp::svc::serve_session(svc, in, out);
      out.flush();
      ::close(conn);
    });
  }
  for (std::thread& t : sessions) t.join();
  ::close(listener);
  return 0;
}

#endif  // !_WIN32

}  // namespace

int main(int argc, char** argv) {
#ifndef _WIN32
  // A client dropping its connection mid-reply must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
#endif
  const Args args = parse_args(argc, argv);
  Service svc(args.cfg);
  if (args.port < 0) {
    const std::size_t handled =
        ttp::svc::serve_session(svc, std::cin, std::cout);
    std::cerr << "ttp_serve: session closed after " << handled
              << " commands\n";
    return 0;
  }
#ifndef _WIN32
  return serve_tcp(svc, args.port);
#else
  std::cerr << "error: TCP mode is not supported on this platform\n";
  return 1;
#endif
}
