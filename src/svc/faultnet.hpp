// Deterministic network-fault injection for the serving layer.
//
// Hostile traffic is hard to reproduce by waiting for it, so the session
// transport routes every read/write through a FaultInjector that can be
// armed — per test, or process-wide via the TTP_FAULT environment
// variable — to misbehave the way real sockets do under load:
//
//   TTP_FAULT   := spec ( ',' spec )*
//   spec        := "eintr:" N        every Nth read/write first fails with
//                                    EINTR (the syscall is NOT issued), so
//                                    retry loops are exercised for real
//                | "short-read:" N   reads are capped at N bytes
//                | "short-write:" N  writes are capped at N bytes
//                | "stall:" MS       every read sleeps MS milliseconds
//                                    first (slowloris from the inside)
//                | "drop-after:" N   reads report EOF after the Nth
//                                    successful read (mid-frame disconnect)
//
// e.g. TTP_FAULT=eintr:3,short-read:1 makes every third I/O call take an
// EINTR detour while delivering payload one byte at a time. All faults are
// counter-based, so a given plan produces the identical fault sequence on
// every run — tests assert on behavior, not on luck. Parsing is strict:
// an unknown mode or a malformed count throws std::invalid_argument (and
// ttp_serve refuses to start rather than silently ignoring a typo'd plan).
//
// Used by FdStreamBuf (svc/server.hpp) for the daemon's TCP sessions and
// directly by tests over socketpairs; tools/chaos_client.py produces the
// complementary client-side hostility (torn frames, slowloris pacing,
// abrupt disconnects) against a live daemon.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ttp::svc {

/// Parsed fault plan; all-zero (default) means no faults.
struct FaultPlan {
  unsigned eintr_every = 0;       ///< 0 = off; else every Nth I/O EINTRs.
  std::size_t short_read = 0;     ///< 0 = off; else per-read byte cap.
  std::size_t short_write = 0;    ///< 0 = off; else per-write byte cap.
  int stall_ms = 0;               ///< 0 = off; else sleep before each read.
  long drop_after_reads = -1;     ///< <0 = off; else EOF after N reads.

  /// True when any fault mode is armed.
  bool active() const noexcept;

  /// Parses the TTP_FAULT grammar above. Empty input -> inactive plan.
  /// Throws std::invalid_argument naming the offending spec otherwise.
  static FaultPlan parse(std::string_view text);

  /// The process-wide plan parsed once from TTP_FAULT (inactive when the
  /// variable is unset). Parse errors from the environment throw on first
  /// use, so a daemon with a typo'd plan fails loudly at startup.
  static const FaultPlan& from_env();
};

#ifndef _WIN32

/// Stateful per-connection injector: wraps read(2)/write(2) and applies the
/// plan deterministically (EINTR every Nth op, byte caps, stalls, EOF after
/// the configured read count). With an inactive plan both calls forward
/// straight to the syscall.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  /// read(2) with faults applied; same return/errno contract.
  long read(int fd, void* buf, std::size_t n) noexcept;
  /// write(2) with faults applied; same return/errno contract.
  long write(int fd, const void* buf, std::size_t n) noexcept;

  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  /// True when this op (1-based global counter) should fail with EINTR.
  bool take_eintr() noexcept;

  FaultPlan plan_{};
  std::uint64_t ops_ = 0;    ///< reads+writes issued (EINTR detours count).
  std::uint64_t reads_ = 0;  ///< successful reads (for drop-after).
};

#endif  // !_WIN32

}  // namespace ttp::svc
