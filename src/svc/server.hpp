// The ttp_serve TCP front end: a supervised session pool with a bounded
// connection lifecycle, replacing the daemon's original grow-only
// thread-per-connection loop (threads were pushed into a vector and only
// joined after accept() failed — i.e. never, under normal operation).
//
// Lifecycle of a connection:
//
//   accept ──► registry full? ──yes──► "ERR overload" + close  (shed)
//      │ no
//      ▼
//   session thread: FdStreamBuf (poll-based deadlines, EINTR-safe,
//   TTP_FAULT-aware) drives serve_session over the shared Service
//      │
//      ├─ idle past --idle-timeout-ms, or a frame torn past
//      │  --read-timeout-ms  ──► "ERR timeout" + close   (timed_out)
//      ├─ QUIT / client EOF  ──► close                   (reaped)
//      └─ drain flag at a command boundary ──► "BYE" + close (drained)
//
// Finished sessions are reaped (joined) continuously from the accept loop,
// so the registry never holds more than max_conns live threads plus the
// handful finished since the last tick.
//
// Graceful drain: SIGTERM/SIGINT call Server::begin_drain() (an atomic
// store — async-signal-safe). The accept loop notices within one poll
// slice, closes the listener, and waits for sessions to finish naturally:
// in-flight SOLVEs complete and get their OK replies, idle sessions get
// BYE. If sessions remain near the --drain-timeout-ms budget, the
// scheduler is stopped (pending solves resolve kCancelled, so blocked
// sessions still send a terminal "ERR cancelled" reply) and remaining
// sockets are shut down; run() then returns 0 — the daemon exits cleanly
// within the drain budget no matter what clients do.
//
// Counters (in the shared Service registry, visible via STATS/METRICS):
//   svc.server.accepted   sessions admitted
//   svc.server.shed       connections refused at max_conns
//   svc.server.timed_out  sessions evicted by a deadline
//   svc.server.drained    sessions ended by graceful drain
// plus the svc.server.active gauge.
#pragma once

#include <cstddef>
#include <string>

#include "svc/service.hpp"

namespace ttp::svc {

/// Connection-lifecycle knobs (the service-level knobs live in
/// ServiceConfig; see parse_serve_args for the flag spellings).
struct ServerConfig {
  int port = 0;                 ///< TCP port; 0 = ephemeral (see Server::port).
  std::size_t max_conns = 256;  ///< Session registry cap; then shed.
  int idle_timeout_ms = 60000;  ///< Between commands; 0 = no idle deadline.
  int read_timeout_ms = 5000;   ///< Whole-frame arrival budget; 0 = none.
  int drain_timeout_ms = 5000;  ///< SIGTERM -> exit-0 budget.
  std::size_t max_frame_bytes = std::size_t{1} << 20;  ///< SOLVE body cap.
};

/// Everything ttp_serve's command line configures.
struct ServeArgs {
  int port = -1;  ///< -1 = stdio mode.
  bool help = false;
  ServiceConfig cfg;
  ServerConfig server;
};

/// Parses and range-validates the ttp_serve argument vector. Returns false
/// and sets `error` (flag name + accepted range) on any malformed value —
/// including negative/zero counts that would wrap to huge unsigned config
/// fields (--cache-mb=-1, --workers=0) and trailing garbage (--port=70x).
/// --help/-h sets args.help and returns true without parsing further.
bool parse_serve_args(int argc, const char* const* argv, ServeArgs& args,
                      std::string& error);

/// Strict long parse of one "--flag=value" argument: the whole value must
/// be a decimal number (optional leading '-') inside [min, max], else
/// `error` names the flag and the accepted range. Shared by ttp_serve and
/// ttp_router (src/cluster) so every daemon flag gets the same
/// no-silent-wrap validation.
bool parse_flag_long(const std::string& arg, const char* flag, long min,
                     long max, long& out, std::string& error);

}  // namespace ttp::svc

#ifndef _WIN32

#include <atomic>
#include <memory>
#include <mutex>
#include <streambuf>
#include <thread>
#include <vector>

#include "svc/faultnet.hpp"
#include "svc/wire.hpp"

namespace ttp::svc {

/// Bidirectional streambuf over a connected socket with the hardened I/O
/// the naive version lacked: poll-based read deadlines (idle between
/// commands, stricter whole-frame budget inside one — a slowloris client
/// trickling bytes cannot pin the thread past read_timeout_ms), EINTR
/// retry on read/write/poll, bounded writes (poll POLLOUT, so a client
/// that stops reading cannot wedge a reply forever), and every syscall
/// routed through a FaultInjector so tests and TTP_FAULT can make the
/// socket hostile on demand. Implements SessionControl: serve_session
/// tells it where the protocol stands, it tells serve_session when the
/// server is draining.
class FdStreamBuf final : public std::streambuf, public SessionControl {
 public:
  /// Why reading stopped, for the transport's close-out line.
  enum class Event { kNone, kClientEof, kTimedOut, kDrain, kError };

  struct Options {
    int idle_timeout_ms = 0;   ///< 0 = no deadline between commands.
    int read_timeout_ms = 0;   ///< 0 = no whole-frame deadline.
    int write_timeout_ms = 0;  ///< 0 = no per-flush deadline.
    /// When set, reads at a command boundary abort once *drain is true.
    const std::atomic<bool>* drain = nullptr;
    FaultPlan faults{};  ///< Defaults to no injected faults.
  };

  explicit FdStreamBuf(int fd, Options opts);
  explicit FdStreamBuf(int fd) : FdStreamBuf(fd, Options{}) {}

  Event event() const noexcept { return event_; }

  /// Re-arms the read deadline `ms` from now (0 or negative = none).
  /// Client-side users (svc::WireClient) hand in a per-call budget here;
  /// the server side arms deadlines via on_boundary()/on_frame() instead.
  void arm_deadline_ms(int ms) noexcept;

  // SessionControl: the wire loop reports protocol position.
  void on_boundary() override;
  void on_frame() override;
  bool should_end() override;
  bool transport_aborted() override {
    return event_ == Event::kTimedOut || event_ == Event::kError;
  }

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  bool draining() const noexcept;
  /// Request bytes already buffered or queued in the kernel: a drain must
  /// serve those before saying BYE, or a fully-sent command would be
  /// silently dropped by the shutdown race.
  bool pending_readable() const noexcept;
  /// Milliseconds left on the current deadline; -1 = no deadline.
  int remaining_ms() const noexcept;

  int fd_;
  Options opts_;
  FaultInjector inject_;
  Event event_ = Event::kNone;
  bool at_boundary_ = true;
  std::int64_t deadline_ns_ = 0;  ///< 0 = no deadline armed.
  char rbuf_[4096];
  char wbuf_[4096];
};

/// What the supervised session pool serves. The Server owns the sockets,
/// deadlines, shedding, reaping, and graceful drain; the host owns the
/// protocol — ttp_serve plugs in its Service sessions (ServiceHost below),
/// the cluster router (src/cluster/router.hpp) plugs in its forwarding
/// sessions, and both get the identical hardened connection lifecycle.
class SessionHost {
 public:
  virtual ~SessionHost() = default;
  /// Registry the server's lifecycle counters (svc.server.*) live in.
  virtual obs::MetricsRegistry& session_metrics() = 0;
  /// One session over the given streams; the server wires opts.control to
  /// its transport (FdStreamBuf) before calling.
  virtual SessionResult serve(std::istream& in, std::ostream& out,
                              const SessionOptions& opts) = 0;
  /// Drain announced. Called from Server::begin_drain — which signal
  /// handlers invoke — so implementations MUST be async-signal-safe
  /// (atomic stores only).
  virtual void drain_begin() noexcept {}
  /// Drain deadline approaching: cancel pending work so blocked sessions
  /// wake with terminal replies. Called from the drain thread.
  virtual void drain_force() {}
};

/// The ttp_serve host: sessions run serve_session over the shared Service;
/// drain flips the Service's draining flag and, when forced, stops the
/// scheduler (pending solves resolve kCancelled).
class ServiceHost final : public SessionHost {
 public:
  explicit ServiceHost(Service& svc) : svc_(svc) {}
  obs::MetricsRegistry& session_metrics() override { return svc_.metrics(); }
  SessionResult serve(std::istream& in, std::ostream& out,
                      const SessionOptions& opts) override {
    return serve_session(svc_, in, out, opts);
  }
  void drain_begin() noexcept override { svc_.set_draining(true); }
  void drain_force() override { svc_.scheduler().stop(); }

 private:
  Service& svc_;
};

/// The supervised session pool. One Server owns the listener and every
/// session thread; all sessions share the one SessionHost.
class Server {
 public:
  Server(SessionHost& host, ServerConfig cfg);
  /// Convenience for the common case: serves `svc` through an internally
  /// owned ServiceHost.
  Server(Service& svc, ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens. False (with `error` set) on socket/bind failure.
  bool listen(std::string& error);

  /// The actual bound port (resolves cfg.port == 0 after listen()).
  int port() const noexcept { return port_; }

  /// Accept loop; blocks until drain completes. Returns the process exit
  /// code (0 on a clean drain, 1 if listen() was never called).
  int run();

  /// Flips the drain flag. Async-signal-safe (a relaxed atomic store) —
  /// this is what the SIGTERM/SIGINT handlers call. Idempotent.
  void begin_drain() noexcept;
  bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Sessions currently registered (live + finished-but-unreaped).
  std::size_t active_sessions() const;
  /// High-water mark of the registry, taken after each reap: bounded by
  /// max_conns regardless of how many connections ever arrived.
  std::size_t peak_sessions() const;

 private:
  struct Session {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void run_session(Session& session);
  /// Joins finished sessions; returns the number still live.
  std::size_t reap_locked();
  std::size_t reap();
  /// The end-of-run drain sequence described in the header comment.
  void drain();

  std::unique_ptr<SessionHost> owned_host_;  ///< Set by the Service ctor.
  SessionHost& host_;
  ServerConfig cfg_;
  int listener_ = -1;
  int port_ = -1;
  std::atomic<bool> draining_{false};

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::size_t peak_sessions_ = 0;

  obs::Counter& accepted_;
  obs::Counter& shed_;
  obs::Counter& timed_out_;
  obs::Counter& drained_;
  obs::Counter& errored_;
  obs::Gauge& active_gauge_;
};

}  // namespace ttp::svc

#endif  // !_WIN32
