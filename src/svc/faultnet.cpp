#include "svc/faultnet.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace ttp::svc {

namespace {

/// Parses a non-negative decimal count, consuming the whole token.
long parse_count(std::string_view spec, std::string_view value) {
  if (value.empty()) {
    throw std::invalid_argument("TTP_FAULT: missing count in '" +
                                std::string(spec) + "'");
  }
  long out = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("TTP_FAULT: bad count in '" +
                                  std::string(spec) + "'");
    }
    out = out * 10 + (c - '0');
    if (out > 1'000'000'000L) {
      throw std::invalid_argument("TTP_FAULT: count out of range in '" +
                                  std::string(spec) + "'");
    }
  }
  return out;
}

}  // namespace

bool FaultPlan::active() const noexcept {
  return eintr_every != 0 || short_read != 0 || short_write != 0 ||
         stall_ms != 0 || drop_after_reads >= 0;
}

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view spec = text.substr(pos, end - pos);
    pos = end + 1;
    if (spec.empty()) continue;
    const std::size_t colon = spec.find(':');
    if (colon == std::string_view::npos) {
      throw std::invalid_argument("TTP_FAULT: expected mode:count, got '" +
                                  std::string(spec) + "'");
    }
    const std::string_view mode = spec.substr(0, colon);
    const long count = parse_count(spec, spec.substr(colon + 1));
    if (mode == "eintr") {
      plan.eintr_every = static_cast<unsigned>(count);
    } else if (mode == "short-read") {
      plan.short_read = static_cast<std::size_t>(count);
    } else if (mode == "short-write") {
      plan.short_write = static_cast<std::size_t>(count);
    } else if (mode == "stall") {
      plan.stall_ms = static_cast<int>(count);
    } else if (mode == "drop-after") {
      plan.drop_after_reads = count;
    } else {
      throw std::invalid_argument("TTP_FAULT: unknown fault mode '" +
                                  std::string(mode) + "'");
    }
  }
  return plan;
}

const FaultPlan& FaultPlan::from_env() {
  static const FaultPlan plan = [] {
    const char* env = std::getenv("TTP_FAULT");
    return env == nullptr ? FaultPlan{} : parse(env);
  }();
  return plan;
}

#ifndef _WIN32

bool FaultInjector::take_eintr() noexcept {
  if (plan_.eintr_every == 0) return false;
  return ++ops_ % plan_.eintr_every == 0;
}

long FaultInjector::read(int fd, void* buf, std::size_t n) noexcept {
  if (plan_.stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(plan_.stall_ms));
  }
  if (take_eintr()) {
    errno = EINTR;
    return -1;
  }
  if (plan_.drop_after_reads >= 0 &&
      reads_ >= static_cast<std::uint64_t>(plan_.drop_after_reads)) {
    return 0;  // injected mid-stream disconnect
  }
  if (plan_.short_read != 0 && n > plan_.short_read) n = plan_.short_read;
  const ssize_t got = ::read(fd, buf, n);
  if (got > 0) ++reads_;
  return static_cast<long>(got);
}

long FaultInjector::write(int fd, const void* buf, std::size_t n) noexcept {
  if (take_eintr()) {
    errno = EINTR;
    return -1;
  }
  if (plan_.short_write != 0 && n > plan_.short_write) n = plan_.short_write;
  return static_cast<long>(::write(fd, buf, n));
}

#endif  // !_WIN32

}  // namespace ttp::svc
