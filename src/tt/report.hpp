// Human-readable summaries of solver results, shared by examples & benches.
#pragma once

#include <iosfwd>
#include <string>

#include "tt/solver.hpp"

namespace ttp::tt {

/// One-paragraph instance description (k, m, N, weights).
std::string describe(const Instance& ins);

/// Prints cost, tree, and step accounting for a solve.
void print_result(std::ostream& os, const Instance& ins,
                  const SolveResult& res, const std::string& solver_name);

/// Dumps the global tracer's recorded spans as an indented tree (no-op when
/// tracing is off or no spans were recorded). Pairs with TTP_TRACE=spans.
void print_span_tree(std::ostream& os);

}  // namespace ttp::tt
