// Human-readable summaries of solver results, shared by examples & benches.
#pragma once

#include <iosfwd>
#include <string>

#include "tt/solver.hpp"

namespace ttp::tt {

/// One-paragraph instance description (k, m, N, weights).
std::string describe(const Instance& ins);

/// Prints cost, tree, and step accounting for a solve.
void print_result(std::ostream& os, const Instance& ins,
                  const SolveResult& res, const std::string& solver_name);

}  // namespace ttp::tt
