// Common result types shared by all five TT solvers, plus tree
// reconstruction from a solved DP table.
//
// Every solver fills a DpTable (C(S) and the argmin action per state) and a
// StepCounter whose meaning is solver-specific but NORMATIVE — the paper's
// headline claims are cost-model comparisons, so these must mean the same
// thing in every backend (tests/test_accounting.cpp enforces this):
//   - sequential/batch: parallel_steps == total_ops == # of M[S,i]
//     evaluations == N·(2^k − 1)  (the paper's T_1)
//   - threads: parallel_steps == Σ_j ceil(|layer j| / width) (one step per
//     width-wide round); total_ops == N·(2^k − 1), the M-evaluations
//     actually performed — identical to sequential, partial rounds charged
//     at their true size
//   - hypercube/CCC/BVM: simulated machine steps (the paper's cost model)
// Table-building solvers also record a "m_evaluations" breakdown counter so
// obs summaries are comparable across backends.
// Tie-breaking is uniform: among equal-cost actions the lowest index wins,
// so all solvers reconstruct identical trees.
#pragma once

#include <limits>
#include <vector>

#include "obs/metrics.hpp"
#include "tt/instance.hpp"
#include "tt/tree.hpp"
#include "util/counters.hpp"

namespace ttp::tt {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

struct DpTable {
  int k = 0;
  std::vector<double> cost;      ///< C(S), indexed by mask; size 2^k.
  std::vector<int> best_action;  ///< argmin_i M[S,i]; -1 for ∅ or infeasible.

  double root_cost() const {
    return cost.at((std::size_t{1} << k) - 1);
  }
};

struct SolveResult {
  DpTable table;
  double cost = kInf;        ///< C(U); kInf when the instance is inadequate.
  Tree tree;                 ///< Empty when infeasible.
  util::StepCounter steps;   ///< Solver-specific cost model, see above.
  /// Named per-solve counters ("bvm_instructions", "pes", ...). A full
  /// metrics registry so solvers can also attach histograms/gauges.
  obs::MetricsRegistry breakdown;
};

/// Rebuilds the optimal procedure tree by following best_action pointers.
/// Requires a table where best_action is consistent with cost (all solvers
/// guarantee this); returns an empty tree when C(U) is infinite.
Tree reconstruct_tree(const Instance& ins, const DpTable& table);

/// Max |C_a(S) - C_b(S)| over all states; used by cross-solver tests.
double max_table_diff(const DpTable& a, const DpTable& b);

}  // namespace ttp::tt
