#include "tt/tree.hpp"

#include <functional>
#include <sstream>
#include <stdexcept>

namespace ttp::tt {

Tree::Tree(std::vector<TreeNode> nodes, int root)
    : nodes_(std::move(nodes)), root_(root) {
  if (root_ < -1 || root_ >= static_cast<int>(nodes_.size())) {
    throw std::invalid_argument("Tree: root out of range");
  }
}

int Tree::depth() const {
  if (root_ < 0) return 0;
  std::function<int(int)> rec = [&](int n) -> int {
    if (n < 0) return 0;
    const TreeNode& t = nodes_[static_cast<std::size_t>(n)];
    return 1 + std::max(rec(t.yes), rec(t.no));
  };
  return rec(root_);
}

double Tree::path_cost(const Instance& ins, int object) const {
  if (root_ < 0) throw std::runtime_error("Tree::path_cost: empty tree");
  double cost = 0.0;
  int cur = root_;
  // A successful procedure visits each state at most once; bound the walk to
  // detect cyclic/malformed trees instead of looping forever.
  for (int steps = 0; steps <= size(); ++steps) {
    const TreeNode& t = nodes_[static_cast<std::size_t>(cur)];
    const Action& a = ins.action(t.action);
    cost += a.cost;
    const bool inside = util::has_bit(a.set, object);
    if (a.is_test) {
      cur = inside ? t.yes : t.no;
    } else {
      if (inside) return cost;  // treated
      cur = t.no;               // failure continuation
    }
    if (cur < 0) {
      throw std::runtime_error(
          "Tree::path_cost: walk fell off the tree before object " +
          std::to_string(object) + " was treated");
    }
  }
  throw std::runtime_error("Tree::path_cost: cycle detected");
}

double Tree::expected_cost(const Instance& ins) const {
  double total = 0.0;
  for (int j = 0; j < ins.k(); ++j) {
    total += path_cost(ins, j) * ins.weight(j);
  }
  return total;
}

std::string Tree::to_dot(const Instance& ins) const {
  std::ostringstream os;
  os << "digraph tt_procedure {\n  node [fontname=\"monospace\"];\n";
  for (int i = 0; i < size(); ++i) {
    const TreeNode& t = nodes_[static_cast<std::size_t>(i)];
    const Action& a = ins.action(t.action);
    os << "  n" << i << " [label=\"" << a.name << "\\n"
       << util::mask_to_string(a.set) << "  c=" << a.cost << "\\nS="
       << util::mask_to_string(t.state) << "\", shape="
       << (a.is_test ? "box" : "doublecircle") << "];\n";
    if (a.is_test) {
      if (t.yes >= 0) os << "  n" << i << " -> n" << t.yes << " [label=\"+\"];\n";
      if (t.no >= 0) os << "  n" << i << " -> n" << t.no << " [label=\"-\"];\n";
    } else if (t.no >= 0) {
      os << "  n" << i << " -> n" << t.no
         << " [label=\"fail\", style=dashed];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string Tree::to_string(const Instance& ins) const {
  std::ostringstream os;
  std::function<void(int, std::string, std::string)> rec =
      [&](int n, std::string prefix, std::string tag) {
        if (n < 0) return;
        const TreeNode& t = nodes_[static_cast<std::size_t>(n)];
        const Action& a = ins.action(t.action);
        os << prefix << tag << (a.is_test ? "TEST " : "TREAT ") << a.name
           << " " << util::mask_to_string(a.set) << "  [S="
           << util::mask_to_string(t.state) << ", cost=" << a.cost << "]\n";
        const std::string childPrefix = prefix + "  ";
        if (a.is_test) {
          rec(t.yes, childPrefix, "+ ");
          rec(t.no, childPrefix, "- ");
        } else if (t.no >= 0) {
          rec(t.no, childPrefix, "f ");  // treatment failure arc
        }
      };
  rec(root_, "", "");
  return os.str();
}

}  // namespace ttp::tt
