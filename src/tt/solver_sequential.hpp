// Sequential backward-induction DP for the TT problem — the paper's baseline
// ("the known sequential algorithm ... obtained by modifying the backward
// induction algorithm given by Garey"). Layers |S| = 1..k; within a layer
// every (S, i) pair is evaluated once, so T_1 = Θ(N·2^k) M-evaluations.
#pragma once

#include "tt/solver.hpp"

namespace ttp::tt {

class SequentialSolver {
 public:
  /// Solves `ins`; steps.total_ops counts M[S,i] evaluations (the paper's T_1).
  ///
  /// Thread safety: the reusable SolveArena behind this is thread_local,
  /// so one SequentialSolver may be shared across threads freely — unlike
  /// ThreadsSolver/FrontierSolver, whose member arenas make solve()
  /// single-caller per object (see solver_threads.hpp).
  SolveResult solve(const Instance& ins) const;
};

/// Reference M[S,i] evaluation: computes M[S,i] given finalized costs for
/// strictly smaller states; kInf for useless/inapplicable actions. The hot
/// path is the tiled kernel in tt/kernel.hpp, which tests pin bitwise
/// against this function; validate.cpp and cross-checks call it directly.
double action_value(const Instance& ins, const std::vector<double>& cost,
                    const std::vector<double>& weight_table, Mask s, int i);

}  // namespace ttp::tt
