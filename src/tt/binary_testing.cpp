#include "tt/binary_testing.hpp"

#include <cmath>
#include <limits>

#include "util/bits.hpp"

namespace ttp::tt {

BinaryTestingResult solve_binary_testing(const Instance& ins) {
  ins.check();
  const int k = ins.k();
  const std::size_t states = std::size_t{1} << k;
  const std::vector<double>& wt = ins.subset_weight_table();
  BinaryTestingResult res;
  res.state_cost.assign(states, std::numeric_limits<double>::infinity());
  res.best_test.assign(states, -1);
  res.state_cost[0] = 0.0;
  for (int j = 0; j < k; ++j) res.state_cost[util::bit(j)] = 0.0;

  for (int size = 2; size <= k; ++size) {
    for (Mask s : util::layer_subsets(k, size)) {
      double best = std::numeric_limits<double>::infinity();
      int arg = -1;
      for (int i = 0; i < ins.num_tests(); ++i) {
        const Mask inter = s & ins.action(i).set;
        const Mask minus = s & ~ins.action(i).set;
        if (inter == 0 || minus == 0) continue;
        const double v = ins.action(i).cost * wt[s] + res.state_cost[inter] +
                         res.state_cost[minus];
        if (v < best) {
          best = v;
          arg = i;
        }
      }
      res.state_cost[s] = best;
      res.best_test[s] = arg;
    }
  }
  res.cost = res.state_cost[ins.universe()];
  return res;
}

double entropy_lower_bound(const Instance& ins) {
  const double total = ins.subset_weight(ins.universe());
  double h = 0.0;
  for (int j = 0; j < ins.k(); ++j) {
    const double p = ins.weight(j) / total;
    if (p > 0) h -= p * std::log2(p);
  }
  return h * total;
}

Instance with_singleton_treatments(const Instance& tests_only,
                                   const std::vector<double>& fix_cost) {
  Instance out(tests_only.k(), tests_only.weights());
  for (const Action& a : tests_only.actions()) {
    if (a.is_test) out.add_test(a.set, a.cost, a.name);
  }
  for (int j = 0; j < tests_only.k(); ++j) {
    out.add_treatment(util::bit(j), fix_cost.at(static_cast<std::size_t>(j)),
                      "fix" + std::to_string(j));
  }
  out.check();
  return out;
}

}  // namespace ttp::tt
