// Instance generators for the application domains the paper motivates
// (§1: medical diagnosis, machine fault location, systematic biology) plus
// structured families used by tests and benches.
//
// Every generator returns an *adequate* instance (a successful procedure
// exists): each guarantees that the treatments cover the universe, which
// together with single-object treatability makes the DP finite at U.
#pragma once

#include "tt/instance.hpp"
#include "util/rng.hpp"

namespace ttp::tt {

struct RandomOptions {
  int num_tests = 4;
  int num_treatments = 4;
  double test_density = 0.5;   ///< Pr[object ∈ test set].
  double treat_density = 0.3;  ///< Pr[object ∈ treatment set].
  double min_cost = 0.5;
  double max_cost = 4.0;
  bool integer_costs = false;  ///< Costs drawn from {1..max_cost} instead.
  bool integer_weights = false;
};

/// Random adequate instance; if the sampled treatments leave objects
/// uncovered, singleton treatments are appended for them.
Instance random_instance(int k, const RandomOptions& opt, util::Rng& rng);

/// Medical diagnosis: diseases with Zipf-like priors, symptom-panel tests,
/// narrow expensive cures plus a few broad-spectrum treatments.
Instance medical_instance(int k, int num_tests, util::Rng& rng);

/// Machine fault location: modules arranged in a binary structure tree;
/// tests probe subtrees (bisection), treatments replace single modules or
/// whole boards (subtrees).
Instance machine_fault_instance(int k, util::Rng& rng);

/// Systematic biology identification key: binary characters aligned with a
/// random taxonomy; "treatment" = identify/confirm a single taxon.
Instance biology_key_instance(int k, util::Rng& rng);

/// Laboratory analysis (paper §1): candidate substances identified by assay
/// panels. Assays come in cheap colorimetric screens (broad, noisy-shaped
/// subsets) and dear chromatography runs (narrow); "treatment" = the
/// definitive confirmation workup for a substance group.
Instance lab_analysis_instance(int k, util::Rng& rng);

/// Logistical system breakdown correction (paper §1): failed subsystems in
/// a supply chain; tests are status queries along routes (contiguous
/// segments), treatments dispatch repair crews covering depots (blocks,
/// cost ~ crew travel + block size).
Instance logistics_instance(int k, util::Rng& rng);

/// Binary testing specialization (the problem TT generalizes): every object
/// has a unit-cost singleton treatment and the given number of random tests.
Instance binary_testing_instance(int k, int num_tests, util::Rng& rng);

/// The paper's N = O(2^k) extreme: every non-trivial subset appears as both
/// a test and a treatment (unit costs). Only sensible for small k.
Instance complete_instance(int k);

}  // namespace ttp::tt
