// Portable 4-wide SIMD kernel variant (GCC/Clang vector extensions).
//
// Lane discipline — the whole correctness argument in one paragraph: each
// vector LANE owns one STATE, and actions are walked in the same ascending
// order as the scalar reference with the same strict-< blend. Every lane
// therefore performs the identical sequence of IEEE operations — the
// multiply/add association of m_test_value/m_treat_value, the validity
// select, the running-min compare — that the scalar tile performs for that
// state, so cost/best_action come out byte-identical by construction, ties
// included (lowest action index wins because a later equal value fails the
// strict <). Remainder states (count % 4) go through the scalar tile.
//
// This TU is compiled for the baseline target (no -m flags): the vector
// extensions lower to whatever the base ISA offers (SSE2 pairs on x86-64,
// NEON on aarch64), which is why this variant is the universal fallback
// when AVX2 is absent. kernel_simd_avx2.cpp is the same algorithm with
// hardware gathers.
#include <cstdint>

#include "tt/kernel.hpp"

namespace ttp::tt::detail {
namespace {

typedef double v4df __attribute__((vector_size(32)));
typedef long long v4di __attribute__((vector_size(32)));
typedef unsigned v4su __attribute__((vector_size(16)));

constexpr v4su kZero = {0, 0, 0, 0};

/// Bitwise select: lane l gets a[l] where mask[l] is all-ones, else b[l].
inline v4df blend_pd(v4di mask, v4df a, v4df b) {
  return reinterpret_cast<v4df>((mask & reinterpret_cast<v4di>(a)) |
                                (~mask & reinterpret_cast<v4di>(b)));
}

inline v4di blend_i64(v4di mask, v4di a, v4di b) {
  return (mask & a) | (~mask & b);
}

inline v4df gather_pd(const double* p, v4su idx) {
  return v4df{p[idx[0]], p[idx[1]], p[idx[2]], p[idx[3]]};
}

inline v4su load_u32(const std::uint32_t* p) {
  return v4su{p[0], p[1], p[2], p[3]};
}

std::uint64_t eval_states_portable(const ActionSoA& a, const double* wt,
                                   const Mask* states, std::size_t count,
                                   double* cost, int* best,
                                   const KernelCtx* ctx) {
  const v4df vinf = {kInf, kInf, kInf, kInf};
  const std::size_t main = count & ~std::size_t{3};
  for (std::size_t t = 0; t < main; t += 4) {
    const v4su s4 = load_u32(states + t);
    const v4df ps = gather_pd(wt, s4);
    v4df bv = vinf;
    v4di bi = {-1, -1, -1, -1};
    for (int i = 0; i < a.num_actions; ++i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      v4su iv, mv;
      if (ctx != nullptr) {
        const std::uint32_t* ir = ctx->inter + ui * ctx->stride + ctx->base + t;
        const std::uint32_t* mr = ctx->minus + ui * ctx->stride + ctx->base + t;
        // Next-tile indices for this action row (t+4 .. t+19 land within
        // the next few outer iterations; one line ahead keeps the N index
        // streams resident without waiting on the hardware prefetcher).
        __builtin_prefetch(ir + 16);
        __builtin_prefetch(mr + 16);
        iv = load_u32(ir);
        mv = load_u32(mr);
      } else {
        const Mask ts = a.set[ui];
        const Mask tn = a.nset[ui];
        iv = s4 & v4su{ts, ts, ts, ts};
        mv = s4 & v4su{tn, tn, tn, tn};
      }
      const double c = a.cost[ui];
      const v4df tc = {c, c, c, c};
      const v4df cm = gather_pd(cost, mv);
      v4df v;
      v4di bad;
      if (i < a.num_tests) {
        const v4df ci = gather_pd(cost, iv);
        v = (tc * ps + ci) + cm;  // m_test_value association, per lane
        bad = __builtin_convertvector(iv == kZero, v4di) |
              __builtin_convertvector(mv == kZero, v4di);
      } else {
        v = tc * ps + cm;  // m_treat_value
        bad = __builtin_convertvector(iv == kZero, v4di);
      }
      v = blend_pd(bad, vinf, v);
      const v4di lt = v < bv;  // strict <, exactly the scalar update
      bv = blend_pd(lt, v, bv);
      bi = blend_i64(lt, v4di{i, i, i, i}, bi);
    }
    for (int l = 0; l < 4; ++l) {
      cost[states[t + static_cast<std::size_t>(l)]] = bv[l];
      best[states[t + static_cast<std::size_t>(l)]] = static_cast<int>(bi[l]);
    }
  }
  if (main < count) {
    eval_tile_scalar(a, wt, states + main, count - main, cost, best);
  }
  return static_cast<std::uint64_t>(count) *
         static_cast<std::uint64_t>(a.num_actions);
}

/// Vectorized stretch of one pair row: actions [i0, i1) of state `s`, all
/// tests or all treatments (caller splits at num_tests). Pure elementwise
/// arithmetic — no reduction — so vector order cannot matter.
void eval_pair_run(const ActionSoA& a, double ws, const double* cost, Mask s,
                   std::size_t i0, std::size_t i1, bool tests, double* out) {
  const v4df vinf = {kInf, kInf, kInf, kInf};
  const v4df ps = {ws, ws, ws, ws};
  const v4su s4 = {s, s, s, s};
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const v4su ts = load_u32(a.set.data() + i);
    const v4su tn = load_u32(a.nset.data() + i);
    const v4su iv = s4 & ts;
    const v4su mv = s4 & tn;
    const v4df tc = {a.cost[i], a.cost[i + 1], a.cost[i + 2], a.cost[i + 3]};
    const v4df cm = gather_pd(cost, mv);
    v4df v;
    v4di bad;
    if (tests) {
      const v4df ci = gather_pd(cost, iv);
      v = (tc * ps + ci) + cm;
      bad = __builtin_convertvector(iv == kZero, v4di) |
            __builtin_convertvector(mv == kZero, v4di);
    } else {
      v = tc * ps + cm;
      bad = __builtin_convertvector(iv == kZero, v4di);
    }
    v = blend_pd(bad, vinf, v);
    out[i - i0] = v[0];
    out[i - i0 + 1] = v[1];
    out[i - i0 + 2] = v[2];
    out[i - i0 + 3] = v[3];
  }
  for (; i < i1; ++i) {
    // wt lookup already hoisted into ws by the caller; eval_pair_scalar
    // wants the table, so inline the scalar select here instead.
    const Mask inter = s & a.set[i];
    const Mask minus = s & a.nset[i];
    double v;
    if (tests) {
      v = m_test_value(a.cost[i], ws, cost[inter], cost[minus]);
      v = (inter == 0 || minus == 0) ? kInf : v;
    } else {
      v = m_treat_value(a.cost[i], ws, cost[minus]);
      v = inter == 0 ? kInf : v;
    }
    out[i - i0] = v;
  }
}

void eval_pairs_portable(const ActionSoA& a, const double* wt,
                         const double* cost, const Mask* states,
                         std::size_t begin, std::size_t end, double* m) {
  const std::size_t n = static_cast<std::size_t>(a.num_actions);
  const std::size_t nt = static_cast<std::size_t>(a.num_tests);
  std::size_t idx = begin;
  while (idx < end) {
    const std::size_t pos = idx / n;
    const std::size_t i0 = idx % n;
    const std::size_t i1 = std::min(n, i0 + (end - idx));
    const Mask s = states[pos];
    const double ws = wt[s];
    // Split the row stretch at the test/treatment boundary; each side is a
    // homogeneous vector run.
    if (i0 < nt) {
      const std::size_t te = std::min(i1, nt);
      eval_pair_run(a, ws, cost, s, i0, te, true, m + idx);
      if (i1 > nt) {
        eval_pair_run(a, ws, cost, s, nt, i1, false, m + idx + (nt - i0));
      }
    } else {
      eval_pair_run(a, ws, cost, s, i0, i1, false, m + idx);
    }
    idx += i1 - i0;
  }
}

void reduce_pairs_portable(const ActionSoA& a, const double* m,
                           const Mask* states, std::size_t begin,
                           std::size_t end, double* cost, int* best) {
  const std::size_t n = static_cast<std::size_t>(a.num_actions);
  const v4df vinf = {kInf, kInf, kInf, kInf};
  std::size_t pos = begin;
  for (; pos + 4 <= end; pos += 4) {
    const double* r0 = m + pos * n;
    const double* r1 = r0 + n;
    const double* r2 = r1 + n;
    const double* r3 = r2 + n;
    v4df bv = vinf;
    v4di bi = {-1, -1, -1, -1};
    for (std::size_t i = 0; i < n; ++i) {
      const v4df v = {r0[i], r1[i], r2[i], r3[i]};
      const v4di lt = v < bv;
      bv = blend_pd(lt, v, bv);
      const long long ii = static_cast<long long>(i);
      bi = blend_i64(lt, v4di{ii, ii, ii, ii}, bi);
    }
    for (int l = 0; l < 4; ++l) {
      const Mask s = states[pos + static_cast<std::size_t>(l)];
      cost[s] = bv[l];
      best[s] = static_cast<int>(bi[l]);
    }
  }
  for (; pos < end; ++pos) {
    const double* row = m + pos * n;
    double bv = kInf;
    int bi = -1;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = row[i];
      const bool lt = v < bv;
      bv = lt ? v : bv;
      bi = lt ? static_cast<int>(i) : bi;
    }
    cost[states[pos]] = bv;
    best[states[pos]] = bi;
  }
}

}  // namespace

const KernelOps& portable_ops() noexcept {
  static constexpr KernelOps ops{eval_states_portable, eval_pairs_portable,
                                 reduce_pairs_portable,
                                 KernelVariant::kSimdPortable};
  return ops;
}

}  // namespace ttp::tt::detail
