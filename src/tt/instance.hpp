// The test-and-treatment (TT) problem model (paper §1).
//
// A universe U = {0..k-1} of objects, object j having a-priori weight P_j > 0
// (weights need not be normalized), and N actions. Actions 0..m-1 are tests,
// m..N-1 are treatments; action i is a subset T_i of U with execution cost
// t_i >= 0. Exactly one unknown object is faulty. A test splits the candidate
// set S into S∩T_i / S-T_i; a treatment cures the objects of S∩T_i (the
// procedure ends if the faulty object was among them) and on failure
// continues on S-T_i. The optimal procedure minimizes expected cost:
//
//   C(∅)   = 0
//   C(S)   = min_i M[S,i]
//   M[S,i] = t_i·p(S) + C(S∩T_i) + C(S-T_i)   for tests with ∅≠S∩T_i≠S
//   M[S,i] = t_i·p(S) + C(S-T_i)              for treatments with S∩T_i≠∅
//
// where p(S) = Σ_{j∈S} P_j. Useless actions are excluded by the layered
// evaluation (they would reference C(S) itself, still INF).
#pragma once

#include <string>
#include <vector>

#include "util/bits.hpp"

namespace ttp::tt {

using util::Mask;

struct Action {
  Mask set = 0;       ///< T_i as a bitmask over U.
  double cost = 0.0;  ///< t_i >= 0.
  bool is_test = false;
  std::string name;   ///< Optional label used in reports and trees.
};

/// Maximum universe size accepted by any solver (2^k DP states).
inline constexpr int kMaxUniverse = 24;

class Instance {
 public:
  Instance(int k, std::vector<double> weights);

  /// Tests are kept before treatments; each call appends within its group
  /// preserving insertion order, so action indices follow the paper's
  /// convention (tests 0..m-1, treatments m..N-1).
  int add_test(Mask set, double cost, std::string name = "");
  int add_treatment(Mask set, double cost, std::string name = "");

  int k() const noexcept { return k_; }
  int num_actions() const noexcept { return static_cast<int>(actions_.size()); }
  int num_tests() const noexcept { return num_tests_; }
  int num_treatments() const noexcept { return num_actions() - num_tests_; }
  Mask universe() const noexcept { return util::universe(k_); }

  const Action& action(int i) const { return actions_.at(static_cast<std::size_t>(i)); }
  const std::vector<Action>& actions() const noexcept { return actions_; }
  double weight(int obj) const { return weights_.at(static_cast<std::size_t>(obj)); }
  const std::vector<double>& weights() const noexcept { return weights_; }

  /// Σ_{j∈S} P_j, fixed association order (ascending object index) so all
  /// solvers produce bitwise-identical sums.
  double subset_weight(Mask s) const;

  /// The full p(S) table for S ⊆ U, indexed by mask. Computed on demand and
  /// cached; every solver reads this one table.
  const std::vector<double>& subset_weight_table() const;

  /// Structural sanity: k in range, weights positive, sets within universe,
  /// costs non-negative. Throws std::invalid_argument on violation.
  void check() const;

  /// Necessary and sufficient condition for a successful procedure to exist
  /// (adequacy): every object is covered by some treatment is necessary;
  /// sufficiency additionally needs reachability, which the DP settles.
  /// This cheap check covers the common case and is used by generators.
  bool every_object_treatable() const;

 private:
  int k_;
  std::vector<double> weights_;
  std::vector<Action> actions_;
  int num_tests_ = 0;
  mutable std::vector<double> weight_table_;  // lazy cache
};

/// A worked 4-object instance in the spirit of the paper's Fig. 1 (a small
/// medical-diagnosis shaped problem with two tests and three treatments).
Instance fig1_example();

}  // namespace ttp::tt
