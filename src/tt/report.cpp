#include "tt/report.hpp"

#include <ostream>
#include <sstream>

#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace ttp::tt {

std::string describe(const Instance& ins) {
  std::ostringstream os;
  os << "TT instance: k=" << ins.k() << " objects, " << ins.num_tests()
     << " tests + " << ins.num_treatments() << " treatments (N="
     << ins.num_actions() << ")\n";
  os << "  weights:";
  for (int j = 0; j < ins.k(); ++j) os << ' ' << ins.weight(j);
  os << '\n';
  for (int i = 0; i < ins.num_actions(); ++i) {
    const Action& a = ins.action(i);
    os << "  [" << i << "] " << (a.is_test ? "test " : "treat") << ' '
       << a.name << ' ' << util::mask_to_string(a.set) << " cost=" << a.cost
       << '\n';
  }
  return os.str();
}

void print_result(std::ostream& os, const Instance& ins,
                  const SolveResult& res, const std::string& solver_name) {
  os << solver_name << ": C(U) = " << res.cost << '\n';
  if (!res.tree.empty()) {
    os << "optimal procedure (" << res.tree.size() << " nodes, depth "
       << res.tree.depth() << "):\n"
       << res.tree.to_string(ins);
  } else {
    os << "no successful procedure exists (inadequate specification)\n";
  }
  os << "steps: parallel=" << res.steps.parallel_steps
     << " routed=" << res.steps.route_steps << " ops=" << res.steps.total_ops
     << '\n';
  for (const auto& [name, v] : res.breakdown.all()) {
    os << "  " << name << " = " << v << '\n';
  }
}

void print_span_tree(std::ostream& os) {
  obs::Tracer& tr = obs::tracer();
  if (!tr.enabled()) return;
  const std::vector<obs::SpanRecord> spans = tr.snapshot();
  if (spans.empty()) return;
  os << "trace spans:\n";
  obs::write_span_tree(os, spans);
}

}  // namespace ttp::tt
