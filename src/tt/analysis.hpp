// Statistics over TT procedures: what a clinician/technician planning a
// protocol actually reads off a solved tree — expected counts, depth,
// per-object costs, action utilization — plus comparisons between
// procedures.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "tt/solver.hpp"

namespace ttp::tt {

struct ProcedureStats {
  double expected_cost = 0.0;
  double expected_tests = 0.0;       ///< E[# tests applied]
  double expected_treatments = 0.0;  ///< E[# treatments applied]
  int depth = 0;                     ///< longest action sequence
  int nodes = 0;
  std::vector<double> object_cost;   ///< path cost per object (unweighted)
  std::vector<int> object_actions;   ///< path length per object
  /// How much of the total expected cost each action contributes,
  /// by action index (absent = unused).
  std::map<int, double> action_share;

  std::string to_string(const Instance& ins) const;
};

/// Computes the full statistics; throws like Tree::path_cost on malformed
/// procedures.
ProcedureStats analyze(const Instance& ins, const Tree& tree);

/// The worst-case (not expected) total cost over objects — the "max bill"
/// a single case can run up under the procedure.
double worst_case_cost(const Instance& ins, const Tree& tree);

/// Expected cost of the procedure under DIFFERENT priors than it was
/// optimized for (robustness probing; weights must be positive, size k).
double expected_cost_under(const Instance& ins, const Tree& tree,
                           const std::vector<double>& priors);

}  // namespace ttp::tt
