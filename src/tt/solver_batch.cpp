#include "tt/solver_batch.hpp"

#include <atomic>

#include "obs/trace.hpp"
#include "tt/kernel.hpp"

namespace ttp::tt {

std::vector<SolveResult> BatchSolver::solve_many(
    std::span<const Instance> instances) const {
  std::vector<SolveResult> out(instances.size());
  if (instances.empty()) return out;
  // Validate on the caller's thread: a malformed instance throws here, not
  // inside a pool worker.
  for (const Instance& ins : instances) ins.check();

  TTP_TRACE_SPAN(span, "solve.batch_many");
  span.attr("instances", static_cast<std::uint64_t>(instances.size()));
  span.attr("workers", static_cast<std::uint64_t>(pool_.size()));

  // parallel_for wakes one task per worker; the ranges are ignored and
  // instances pulled from a shared cursor instead, so heterogeneous sizes
  // balance dynamically. Result placement is by input index, so the
  // output is deterministic regardless of which worker solves what.
  std::atomic<std::size_t> next{0};
  const std::size_t n = instances.size();
  pool_.parallel_for(n, [&](std::size_t, std::size_t) {
    static thread_local SolveArena arena;
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      out[i] = solve_with_arena(instances[i], arena, "solve.batch");
    }
  });
  TTP_METRIC_ADD("batch.instances", instances.size());
  return out;
}

}  // namespace ttp::tt
