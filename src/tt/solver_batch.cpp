#include "tt/solver_batch.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <exception>
#include <mutex>

#include "obs/trace.hpp"
#include "tt/kernel.hpp"

namespace ttp::tt {

std::vector<SolveResult> BatchSolver::solve_many(
    std::span<const Instance> instances) const {
  std::vector<const Instance*> ptrs;
  ptrs.reserve(instances.size());
  for (const Instance& ins : instances) ptrs.push_back(&ins);
  return solve_many(std::span<const Instance* const>(ptrs));
}

std::vector<SolveResult> BatchSolver::solve_many(
    std::span<const Instance* const> instances,
    std::span<const std::uint64_t> traces) const {
  std::vector<SolveResult> out(instances.size());
  if (instances.empty()) return out;
  assert((traces.empty() || traces.size() == instances.size()) &&
         "BatchSolver::solve_many: traces must align with instances");
#ifndef NDEBUG
  {
    // The lazy p(S) cache is per instance and not thread-safe to share: two
    // workers solving the same object would race on subset_weight_table().
    std::vector<const Instance*> sorted(instances.begin(), instances.end());
    std::sort(sorted.begin(), sorted.end());
    assert(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end() &&
           "BatchSolver::solve_many: instance pointers must be distinct");
  }
#endif
  // Validate on the caller's thread: a malformed instance throws here, not
  // inside a pool worker.
  for (const Instance* ins : instances) ins->check();

  TTP_TRACE_SPAN(span, "solve.batch_many");
  span.attr("instances", static_cast<std::uint64_t>(instances.size()));
  span.attr("workers", static_cast<std::uint64_t>(pool_.size()));

  // parallel_for wakes one task per worker; the ranges are ignored and
  // instances pulled from a shared cursor instead, so heterogeneous sizes
  // balance dynamically. Result placement is by input index, so the
  // output is deterministic regardless of which worker solves what.
  std::atomic<std::size_t> next{0};
  const std::size_t n = instances.size();
  // An exception escaping a pool task would std::terminate the process, so
  // workers stash the first one and the caller rethrows it (the adaptive
  // planner throws when a budget-capped closure has no dense fallback).
  std::exception_ptr failure;
  std::mutex failure_mu;
  pool_.parallel_for(n, [&](std::size_t, std::size_t) {
    static thread_local SolveArena arena;
    static thread_local FrontierArena frontier;
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      // Bind the request's trace ID on this worker so the kernel-level
      // span for this instance joins the request's journey.
      const obs::TraceBinding bind(traces.empty() ? obs::current_trace()
                                                  : traces[i]);
      try {
        // pool=nullptr: this worker IS the parallelism — nesting the
        // frontier's own fan-out inside a pool task would double-book the
        // cores for no win at batch depth ≥ workers.
        out[i] = solve_adaptive(*instances[i], arena, frontier, planner_,
                                /*pool=*/nullptr, "solve.batch");
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mu);
        if (!failure) failure = std::current_exception();
      }
    }
  });
  if (failure) std::rethrow_exception(failure);
  TTP_METRIC_ADD("batch.instances", instances.size());
  return out;
}

}  // namespace ttp::tt
