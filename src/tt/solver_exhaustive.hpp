// Independent reference solvers used only for verification.
//
// RecursiveSolver re-derives C(S) top-down (memoized recursion on candidate
// sets, no layer schedule) — an implementation deliberately unlike the
// layered solvers, to catch ordering bugs.
//
// enumerate_min_cost() enumerates *every* procedure tree up to a node budget
// and returns the cheapest successful one. Exponential; only for tiny
// instances in tests, where it certifies that the DP recurrence really
// captures the first-principles tree-cost minimum of paper §1.
#pragma once

#include <optional>

#include "tt/solver.hpp"

namespace ttp::tt {

class RecursiveSolver {
 public:
  SolveResult solve(const Instance& ins) const;
};

/// Minimum expected cost over all successful procedure trees whose node
/// count is at most `max_nodes`, or nullopt if none succeeds within the
/// budget. An optimal tree never repeats a state on a path, so
/// max_nodes >= 2^k - 1 is always sufficient.
std::optional<double> enumerate_min_cost(const Instance& ins, int max_nodes);

}  // namespace ttp::tt
