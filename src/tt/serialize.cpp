#include "tt/serialize.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace ttp::tt {

namespace {

Mask parse_set(const std::string& tok, int k, int line) {
  if (tok.size() < 2 || tok.front() != '{' || tok.back() != '}') {
    throw std::invalid_argument("line " + std::to_string(line) +
                                ": expected {a,b,...} set, got '" + tok + "'");
  }
  Mask m = 0;
  std::stringstream inner(tok.substr(1, tok.size() - 2));
  std::string piece;
  while (std::getline(inner, piece, ',')) {
    if (piece.empty()) continue;
    const int obj = std::stoi(piece);
    if (obj < 0 || obj >= k) {
      throw std::invalid_argument("line " + std::to_string(line) +
                                  ": object " + piece + " outside universe");
    }
    m |= util::bit(obj);
  }
  return m;
}

std::string set_to_text(Mask m) { return util::mask_to_string(m); }

}  // namespace

void write_text(std::ostream& os, const Instance& ins) {
  os.precision(17);  // lossless double round-trip
  os << "tt " << ins.k() << "\n";
  os << "weights";
  for (int j = 0; j < ins.k(); ++j) os << ' ' << ins.weight(j);
  os << "\n";
  for (const Action& a : ins.actions()) {
    os << (a.is_test ? "test " : "treat ") << a.name << ' '
       << set_to_text(a.set) << ' ' << a.cost << "\n";
  }
}

std::string to_text(const Instance& ins) {
  std::ostringstream os;
  write_text(os, ins);
  return os.str();
}

std::vector<int> canonical_action_order(const Instance& ins) {
  std::vector<int> ord(static_cast<std::size_t>(ins.num_actions()));
  std::iota(ord.begin(), ord.end(), 0);
  // Index as the last key makes plain sort stable: duplicate (kind, set,
  // cost) actions keep their relative input order deterministically.
  std::sort(ord.begin(), ord.end(), [&](int a, int b) {
    const Action& x = ins.action(a);
    const Action& y = ins.action(b);
    // Tests (is_test == true) sort before treatments.
    return std::make_tuple(!x.is_test, x.set, x.cost, a) <
           std::make_tuple(!y.is_test, y.set, y.cost, b);
  });
  return ord;
}

void write_canonical_text(std::ostream& os, const Instance& ins) {
  os.precision(17);  // lossless double round-trip
  os << "tt " << ins.k() << "\n";
  os << "weights";
  for (int j = 0; j < ins.k(); ++j) os << ' ' << ins.weight(j);
  os << "\n";
  for (const int i : canonical_action_order(ins)) {
    const Action& a = ins.action(i);
    os << (a.is_test ? "test " : "treat ") << a.name << ' '
       << set_to_text(a.set) << ' ' << a.cost << "\n";
  }
}

std::string to_canonical_text(const Instance& ins) {
  std::ostringstream os;
  write_canonical_text(os, ins);
  return os.str();
}

Instance read_text(std::istream& is) {
  std::string line;
  int lineno = 0;
  int k = -1;
  std::vector<double> weights;
  struct Pending {
    bool is_test;
    std::string name;
    Mask set;
    double cost;
  };
  std::vector<Pending> pending;

  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw)) continue;
    if (kw == "tt") {
      if (!(ls >> k)) {
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": expected 'tt <k>'");
      }
    } else if (kw == "weights") {
      double w;
      while (ls >> w) weights.push_back(w);
    } else if (kw == "test" || kw == "treat") {
      if (k < 0) {
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": action before 'tt <k>' header");
      }
      Pending p;
      p.is_test = kw == "test";
      std::string set_tok;
      if (!(ls >> p.name >> set_tok >> p.cost)) {
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": expected '<name> {set} <cost>'");
      }
      p.set = parse_set(set_tok, k, lineno);
      pending.push_back(std::move(p));
    } else {
      throw std::invalid_argument("line " + std::to_string(lineno) +
                                  ": unknown keyword '" + kw + "'");
    }
  }
  if (k < 0) throw std::invalid_argument("missing 'tt <k>' header");
  if (static_cast<int>(weights.size()) != k) {
    throw std::invalid_argument("expected " + std::to_string(k) +
                                " weights, got " +
                                std::to_string(weights.size()));
  }
  Instance ins(k, std::move(weights));
  for (const Pending& p : pending) {
    if (p.is_test) {
      ins.add_test(p.set, p.cost, p.name);
    } else {
      ins.add_treatment(p.set, p.cost, p.name);
    }
  }
  ins.check();
  return ins;
}

Instance from_text(const std::string& text) {
  std::istringstream is(text);
  return read_text(is);
}

void save_file(const std::string& path, const Instance& ins) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  write_text(os, ins);
  if (!os) throw std::runtime_error("write failed: " + path);
}

Instance load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open: " + path);
  return read_text(is);
}

// ---------------------------------------------------------------------------
// Binary codecs

namespace {

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Zigzag: small magnitudes (including -1, the codec's "absent arc") stay
/// one byte.
void put_zigzag(std::string& out, std::int64_t v) {
  put_varint(out, (static_cast<std::uint64_t>(v) << 1) ^
                      static_cast<std::uint64_t>(v >> 63));
}

void put_double(std::string& out, double d) {
  // Raw IEEE bits, little-endian: byte-exact round trip with no decimal
  // detour, so decode→to_text matches the source text exactly.
  std::uint64_t bits = std::bit_cast<std::uint64_t>(d);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>(bits & 0xff));
    bits >>= 8;
  }
}

/// Bounds-checked reader over untrusted bytes. Every accessor throws
/// std::invalid_argument before touching memory past the span's end.
struct BinReader {
  const unsigned char* p;
  std::size_t left;

  explicit BinReader(std::string_view bytes)
      : p(reinterpret_cast<const unsigned char*>(bytes.data())),
        left(bytes.size()) {}

  [[noreturn]] static void fail(const char* what) {
    throw std::invalid_argument(std::string("binary decode: ") + what);
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (left == 0) fail("truncated varint");
      if (shift >= 64) fail("varint overflows 64 bits");
      const unsigned char byte = *p++;
      --left;
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::int64_t zigzag() {
    const std::uint64_t v = varint();
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
  }

  double f64() {
    if (left < 8) fail("truncated double");
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    p += 8;
    left -= 8;
    return std::bit_cast<double>(bits);
  }

  std::string bytes(std::size_t n) {
    if (left < n) fail("truncated byte run");
    std::string out(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return out;
  }

  void expect_done() const {
    if (left != 0) fail("trailing bytes after value");
  }
};

/// Checked narrowing of a decoded count against a cap — BEFORE any
/// allocation sized by it, so a lying length field cannot OOM the decoder.
std::size_t checked_count(std::uint64_t v, std::uint64_t cap,
                          const char* what) {
  if (v > cap) {
    BinReader::fail(what);
  }
  return static_cast<std::size_t>(v);
}

int checked_index(std::int64_t v, std::int64_t n, const char* what) {
  // Valid range is [-1, n): -1 encodes "absent" everywhere the tree uses it.
  if (v < -1 || v >= n) BinReader::fail(what);
  return static_cast<int>(v);
}

}  // namespace

void encode_tree_binary(const Tree& tree, std::string& out) {
  const auto& nodes = tree.nodes();
  if (nodes.size() > kMaxBinaryNodes) {
    throw std::invalid_argument("encode_tree_binary: too many nodes");
  }
  put_varint(out, nodes.size());
  put_zigzag(out, tree.root());
  for (const TreeNode& n : nodes) {
    put_varint(out, n.state);
    put_zigzag(out, n.action);
    put_zigzag(out, n.yes);
    put_zigzag(out, n.no);
  }
}

Tree decode_tree_binary(std::string_view bytes) {
  BinReader r(bytes);
  const std::size_t count =
      checked_count(r.varint(), kMaxBinaryNodes, "node count past cap");
  const std::int64_t n = static_cast<std::int64_t>(count);
  const int root = checked_index(r.zigzag(), n, "root outside node array");
  std::vector<TreeNode> nodes(count);
  for (TreeNode& node : nodes) {
    const std::uint64_t state = r.varint();
    if (state > 0xffffffffull) BinReader::fail("state mask past 32 bits");
    node.state = static_cast<Mask>(state);
    // Actions index an instance the codec never sees; cap at the varint's
    // value range and let the consumer (tree walk against its instance)
    // reject out-of-range actions.
    const std::int64_t action = r.zigzag();
    if (action < -1 || action > static_cast<std::int64_t>(kMaxBinaryActions)) {
      BinReader::fail("action index out of range");
    }
    node.action = static_cast<int>(action);
    node.yes = checked_index(r.zigzag(), n, "yes arc outside node array");
    node.no = checked_index(r.zigzag(), n, "no arc outside node array");
  }
  r.expect_done();
  if (count == 0) return Tree{};
  return Tree(std::move(nodes), root);
}

void encode_instance_binary(const Instance& ins, std::string& out) {
  if (static_cast<std::uint64_t>(ins.num_actions()) > kMaxBinaryActions) {
    throw std::invalid_argument("encode_instance_binary: too many actions");
  }
  put_varint(out, static_cast<std::uint64_t>(ins.k()));
  for (int j = 0; j < ins.k(); ++j) put_double(out, ins.weight(j));
  put_varint(out, static_cast<std::uint64_t>(ins.num_actions()));
  for (const Action& a : ins.actions()) {
    if (a.name.size() > kMaxBinaryNameBytes) {
      throw std::invalid_argument("encode_instance_binary: name too long");
    }
    out.push_back(a.is_test ? 1 : 0);
    put_varint(out, a.set);
    put_double(out, a.cost);
    put_varint(out, a.name.size());
    out.append(a.name);
  }
}

Instance decode_instance_binary(std::string_view bytes) {
  BinReader r(bytes);
  const std::uint64_t k64 = r.varint();
  if (k64 < 1 || k64 > 32) BinReader::fail("k outside [1, 32]");
  const int k = static_cast<int>(k64);
  std::vector<double> weights(static_cast<std::size_t>(k));
  for (double& w : weights) w = r.f64();
  const std::size_t count =
      checked_count(r.varint(), kMaxBinaryActions, "action count past cap");
  struct Decoded {
    bool is_test;
    Mask set;
    double cost;
    std::string name;
  };
  std::vector<Decoded> actions;
  actions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Decoded d;
    const std::string kind = r.bytes(1);
    if (kind[0] != 0 && kind[0] != 1) BinReader::fail("bad action kind byte");
    d.is_test = kind[0] == 1;
    const std::uint64_t set = r.varint();
    if (set > 0xffffffffull) BinReader::fail("action set past 32 bits");
    d.set = static_cast<Mask>(set);
    d.cost = r.f64();
    const std::size_t name_len = checked_count(
        r.varint(), kMaxBinaryNameBytes, "name length past cap");
    d.name = r.bytes(name_len);
    actions.push_back(std::move(d));
  }
  r.expect_done();
  Instance ins(k, std::move(weights));
  for (Decoded& d : actions) {
    if (d.is_test) {
      ins.add_test(d.set, d.cost, std::move(d.name));
    } else {
      ins.add_treatment(d.set, d.cost, std::move(d.name));
    }
  }
  ins.check();
  return ins;
}

}  // namespace ttp::tt
