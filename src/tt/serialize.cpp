#include "tt/serialize.hpp"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace ttp::tt {

namespace {

Mask parse_set(const std::string& tok, int k, int line) {
  if (tok.size() < 2 || tok.front() != '{' || tok.back() != '}') {
    throw std::invalid_argument("line " + std::to_string(line) +
                                ": expected {a,b,...} set, got '" + tok + "'");
  }
  Mask m = 0;
  std::stringstream inner(tok.substr(1, tok.size() - 2));
  std::string piece;
  while (std::getline(inner, piece, ',')) {
    if (piece.empty()) continue;
    const int obj = std::stoi(piece);
    if (obj < 0 || obj >= k) {
      throw std::invalid_argument("line " + std::to_string(line) +
                                  ": object " + piece + " outside universe");
    }
    m |= util::bit(obj);
  }
  return m;
}

std::string set_to_text(Mask m) { return util::mask_to_string(m); }

}  // namespace

void write_text(std::ostream& os, const Instance& ins) {
  os.precision(17);  // lossless double round-trip
  os << "tt " << ins.k() << "\n";
  os << "weights";
  for (int j = 0; j < ins.k(); ++j) os << ' ' << ins.weight(j);
  os << "\n";
  for (const Action& a : ins.actions()) {
    os << (a.is_test ? "test " : "treat ") << a.name << ' '
       << set_to_text(a.set) << ' ' << a.cost << "\n";
  }
}

std::string to_text(const Instance& ins) {
  std::ostringstream os;
  write_text(os, ins);
  return os.str();
}

std::vector<int> canonical_action_order(const Instance& ins) {
  std::vector<int> ord(static_cast<std::size_t>(ins.num_actions()));
  std::iota(ord.begin(), ord.end(), 0);
  // Index as the last key makes plain sort stable: duplicate (kind, set,
  // cost) actions keep their relative input order deterministically.
  std::sort(ord.begin(), ord.end(), [&](int a, int b) {
    const Action& x = ins.action(a);
    const Action& y = ins.action(b);
    // Tests (is_test == true) sort before treatments.
    return std::make_tuple(!x.is_test, x.set, x.cost, a) <
           std::make_tuple(!y.is_test, y.set, y.cost, b);
  });
  return ord;
}

void write_canonical_text(std::ostream& os, const Instance& ins) {
  os.precision(17);  // lossless double round-trip
  os << "tt " << ins.k() << "\n";
  os << "weights";
  for (int j = 0; j < ins.k(); ++j) os << ' ' << ins.weight(j);
  os << "\n";
  for (const int i : canonical_action_order(ins)) {
    const Action& a = ins.action(i);
    os << (a.is_test ? "test " : "treat ") << a.name << ' '
       << set_to_text(a.set) << ' ' << a.cost << "\n";
  }
}

std::string to_canonical_text(const Instance& ins) {
  std::ostringstream os;
  write_canonical_text(os, ins);
  return os.str();
}

Instance read_text(std::istream& is) {
  std::string line;
  int lineno = 0;
  int k = -1;
  std::vector<double> weights;
  struct Pending {
    bool is_test;
    std::string name;
    Mask set;
    double cost;
  };
  std::vector<Pending> pending;

  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw)) continue;
    if (kw == "tt") {
      if (!(ls >> k)) {
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": expected 'tt <k>'");
      }
    } else if (kw == "weights") {
      double w;
      while (ls >> w) weights.push_back(w);
    } else if (kw == "test" || kw == "treat") {
      if (k < 0) {
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": action before 'tt <k>' header");
      }
      Pending p;
      p.is_test = kw == "test";
      std::string set_tok;
      if (!(ls >> p.name >> set_tok >> p.cost)) {
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": expected '<name> {set} <cost>'");
      }
      p.set = parse_set(set_tok, k, lineno);
      pending.push_back(std::move(p));
    } else {
      throw std::invalid_argument("line " + std::to_string(lineno) +
                                  ": unknown keyword '" + kw + "'");
    }
  }
  if (k < 0) throw std::invalid_argument("missing 'tt <k>' header");
  if (static_cast<int>(weights.size()) != k) {
    throw std::invalid_argument("expected " + std::to_string(k) +
                                " weights, got " +
                                std::to_string(weights.size()));
  }
  Instance ins(k, std::move(weights));
  for (const Pending& p : pending) {
    if (p.is_test) {
      ins.add_test(p.set, p.cost, p.name);
    } else {
      ins.add_treatment(p.set, p.cost, p.name);
    }
  }
  ins.check();
  return ins;
}

Instance from_text(const std::string& text) {
  std::istringstream is(text);
  return read_text(is);
}

void save_file(const std::string& path, const Instance& ins) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  write_text(os, ins);
  if (!os) throw std::runtime_error("write failed: " + path);
}

Instance load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open: " + path);
  return read_text(is);
}

}  // namespace ttp::tt
