#include "tt/kernel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>

#include "obs/trace.hpp"
#include "util/bits.hpp"

namespace ttp::tt {

void ActionSoA::build(const Instance& ins) {
  const std::size_t n = static_cast<std::size_t>(ins.num_actions());
  set.resize(n);
  nset.resize(n);
  cost.resize(n);
  is_test.resize(n);
  num_tests = ins.num_tests();
  num_actions = ins.num_actions();
  for (std::size_t i = 0; i < n; ++i) {
    const Action& a = ins.action(static_cast<int>(i));
    set[i] = a.set;
    nset[i] = ~a.set;
    cost[i] = a.cost;
    is_test[i] = a.is_test ? 1 : 0;
  }
}

void LayerIndex::build(int k) {
  k_ = k;
  const std::size_t states = std::size_t{1} << k;
  masks_.resize(states);
  offsets_.assign(static_cast<std::size_t>(k) + 2, 0);
  for (std::size_t s = 0; s < states; ++s) {
    ++offsets_[static_cast<std::size_t>(util::popcount(static_cast<Mask>(s))) +
               1];
  }
  for (std::size_t j = 1; j < offsets_.size(); ++j) {
    offsets_[j] += offsets_[j - 1];
  }
  // Stable counting sort over ascending s keeps each layer ascending, the
  // order util::layer_subsets produces and the tests pin down.
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t s = 0; s < states; ++s) {
    const int j = util::popcount(static_cast<Mask>(s));
    masks_[cursor[static_cast<std::size_t>(j)]++] = static_cast<Mask>(s);
  }
}

bool PairIndex::ensure(const LayerIndex& layers, const ActionSoA& a) {
  const int k = layers.k();
  const std::size_t states = std::size_t{1} << k;
  const std::size_t n = static_cast<std::size_t>(a.num_actions);
  const std::size_t entries = states * n;
  if (entries * 2 * sizeof(std::uint32_t) > kMaxBytes) return false;
  if (k_ == k && sets_ == a.set) return true;  // exact match: reuse

  k_ = k;
  sets_ = a.set;
  layer_off_.assign(static_cast<std::size_t>(k) + 1, 0);
  layer_size_.assign(static_cast<std::size_t>(k) + 1, 0);
  inter_.resize_discard(entries);
  minus_.resize_discard(entries);
  for (int j = 0; j <= k; ++j) {
    const std::span<const Mask> layer = layers.layer(j);
    layer_off_[static_cast<std::size_t>(j)] = layers.layer_begin(j) * n;
    layer_size_[static_cast<std::size_t>(j)] = layer.size();
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t* ir =
          inter_.data() + layer_off_[static_cast<std::size_t>(j)] +
          i * layer.size();
      std::uint32_t* mr =
          minus_.data() + layer_off_[static_cast<std::size_t>(j)] +
          i * layer.size();
      const Mask ts = a.set[i];
      const Mask tn = a.nset[i];
      for (std::size_t p = 0; p < layer.size(); ++p) {
        ir[p] = static_cast<std::uint32_t>(layer[p] & ts);
        mr[p] = static_cast<std::uint32_t>(layer[p] & tn);
      }
    }
  }
  return true;
}

void SolveArena::prepare_tables(std::size_t states) {
  cost_.resize_discard(states);
  best_.resize_discard(states);
  std::fill_n(cost_.data(), states, kInf);
  std::fill_n(best_.data(), states, -1);
  cost_.data()[0] = 0.0;
}

namespace detail {

/// One tile: `m` states against every action, tests first then treatments
/// (two branch-free runs), running best/argmin held in stack arrays.
void eval_tile_scalar(const ActionSoA& a, const double* __restrict wt,
                      const Mask* __restrict states, std::size_t m,
                      double* __restrict cost, int* __restrict best) {
  Mask s_arr[kKernelTile];
  double ws[kKernelTile];
  double bv[kKernelTile];
  int bi[kKernelTile];
  for (std::size_t t = 0; t < m; ++t) {
    s_arr[t] = states[t];
    ws[t] = wt[s_arr[t]];
    bv[t] = kInf;
    bi[t] = -1;
  }
  for (int i = 0; i < a.num_tests; ++i) {
    const Mask ts = a.set[static_cast<std::size_t>(i)];
    const Mask tn = a.nset[static_cast<std::size_t>(i)];
    const double tc = a.cost[static_cast<std::size_t>(i)];
    for (std::size_t t = 0; t < m; ++t) {
      const Mask s = s_arr[t];
      const Mask inter = s & ts;
      const Mask minus = s & tn;
      // Invalid splits read cost[0] == 0 or the state's own still-kInf
      // slot — finite-or-inf either way, never NaN — so the select after
      // the arithmetic gives the same value action_value's early returns
      // produce.
      double v = m_test_value(tc, ws[t], cost[inter], cost[minus]);
      v = ((inter == 0) | (minus == 0)) ? kInf : v;
      const bool lt = v < bv[t];
      bv[t] = lt ? v : bv[t];
      bi[t] = lt ? i : bi[t];
    }
  }
  for (int i = a.num_tests; i < a.num_actions; ++i) {
    const Mask ts = a.set[static_cast<std::size_t>(i)];
    const Mask tn = a.nset[static_cast<std::size_t>(i)];
    const double tc = a.cost[static_cast<std::size_t>(i)];
    for (std::size_t t = 0; t < m; ++t) {
      const Mask s = s_arr[t];
      const Mask inter = s & ts;
      const Mask minus = s & tn;
      double v = m_treat_value(tc, ws[t], cost[minus]);
      v = inter == 0 ? kInf : v;
      const bool lt = v < bv[t];
      bv[t] = lt ? v : bv[t];
      bi[t] = lt ? i : bi[t];
    }
  }
  for (std::size_t t = 0; t < m; ++t) {
    cost[s_arr[t]] = bv[t];
    best[s_arr[t]] = bi[t];
  }
}

double eval_pair_scalar(const ActionSoA& a, const double* wt,
                        const double* cost, Mask s, std::size_t i) {
  const Mask inter = s & a.set[i];
  const Mask minus = s & a.nset[i];
  double v;
  if (i < static_cast<std::size_t>(a.num_tests)) {
    v = m_test_value(a.cost[i], wt[s], cost[inter], cost[minus]);
    v = (inter == 0 || minus == 0) ? kInf : v;
  } else {
    v = m_treat_value(a.cost[i], wt[s], cost[minus]);
    v = inter == 0 ? kInf : v;
  }
  return v;
}

namespace {

std::uint64_t eval_states_scalar(const ActionSoA& a, const double* wt,
                                 const Mask* states, std::size_t count,
                                 double* cost, int* best,
                                 const KernelCtx* /*ctx*/) {
  for (std::size_t base = 0; base < count; base += kKernelTile) {
    const std::size_t m = std::min(kKernelTile, count - base);
    TTP_TRACE_SPAN(tile_span, "kernel.tile");
    tile_span.attr("base", static_cast<std::uint64_t>(base));
    tile_span.attr("states", static_cast<std::uint64_t>(m));
    eval_tile_scalar(a, wt, states + base, m, cost, best);
  }
  return static_cast<std::uint64_t>(count) *
         static_cast<std::uint64_t>(a.num_actions);
}

void eval_pairs_scalar(const ActionSoA& a, const double* wt,
                       const double* cost, const Mask* states,
                       std::size_t begin, std::size_t end, double* m) {
  const std::size_t n = static_cast<std::size_t>(a.num_actions);
  std::size_t pos = begin / n;
  std::size_t i = begin % n;
  for (std::size_t idx = begin; idx < end; ++idx) {
    m[idx] = eval_pair_scalar(a, wt, cost, states[pos], i);
    if (++i == n) {
      i = 0;
      ++pos;
    }
  }
}

void reduce_pairs_scalar(const ActionSoA& a, const double* m,
                         const Mask* states, std::size_t begin,
                         std::size_t end, double* cost, int* best) {
  const std::size_t n = static_cast<std::size_t>(a.num_actions);
  for (std::size_t pos = begin; pos < end; ++pos) {
    const double* row = m + pos * n;
    double bv = kInf;
    int bi = -1;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = row[i];
      const bool lt = v < bv;
      bv = lt ? v : bv;
      bi = lt ? static_cast<int>(i) : bi;
    }
    cost[states[pos]] = bv;
    best[states[pos]] = bi;
  }
}

}  // namespace

const KernelOps& scalar_ops() noexcept {
  static constexpr KernelOps ops{eval_states_scalar, eval_pairs_scalar,
                                 reduce_pairs_scalar, KernelVariant::kScalar};
  return ops;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Variant resolution & dispatch

namespace {

const detail::KernelOps* best_simd_ops() noexcept {
#if defined(TTP_KERNEL_HAS_AVX2)
  if (kernel_avx2_available()) return &detail::avx2_ops();
#endif
  return &detail::portable_ops();
}

/// TTP_KERNEL (or a set_kernel_variant spec) -> ops table; nullptr for an
/// unavailable or unrecognized request.
const detail::KernelOps* ops_for_spec(std::string_view spec) noexcept {
  if (spec == "scalar") return &detail::scalar_ops();
  if (spec == "portable") return &detail::portable_ops();
  if (spec == "avx2") {
#if defined(TTP_KERNEL_HAS_AVX2)
    if (kernel_avx2_available()) return &detail::avx2_ops();
#endif
    return nullptr;
  }
  if (spec == "simd" || spec == "auto" || spec.empty()) return best_simd_ops();
  return nullptr;
}

std::atomic<const detail::KernelOps*> g_ops{nullptr};

/// First-use resolution: consult TTP_KERNEL, fall back to the best SIMD the
/// CPU supports. An unrecognized value degrades to auto rather than
/// aborting a serving binary at startup.
const detail::KernelOps* resolve_ops() noexcept {
  const detail::KernelOps* ops = g_ops.load(std::memory_order_acquire);
  if (ops != nullptr) return ops;
  const char* env = std::getenv("TTP_KERNEL");
  const detail::KernelOps* resolved =
      ops_for_spec(env == nullptr ? std::string_view{} : std::string_view{env});
  if (resolved == nullptr) resolved = best_simd_ops();
  // Concurrent first calls may race to store; every candidate store is a
  // valid resolution of the same environment, so last-writer-wins is fine.
  g_ops.store(resolved, std::memory_order_release);
  return resolved;
}

}  // namespace

bool kernel_avx2_available() noexcept {
#if defined(TTP_KERNEL_HAS_AVX2) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

KernelVariant active_kernel_variant() noexcept { return resolve_ops()->variant; }

std::string_view kernel_variant_name(KernelVariant v) noexcept {
  switch (v) {
    case KernelVariant::kScalar:
      return "scalar";
    case KernelVariant::kSimdPortable:
      return "simd-portable";
    case KernelVariant::kSimdAvx2:
      return "simd-avx2";
  }
  return "unknown";
}

std::string_view active_kernel_variant_name() noexcept {
  return kernel_variant_name(active_kernel_variant());
}

bool set_kernel_variant(std::string_view spec) noexcept {
  const detail::KernelOps* ops = ops_for_spec(spec);
  if (ops == nullptr) return false;
  g_ops.store(ops, std::memory_order_release);
  return true;
}

// ---------------------------------------------------------------------------
// Public entry points (dispatching)

std::uint64_t eval_states(const ActionSoA& a, const double* wt,
                          const Mask* states, std::size_t count, double* cost,
                          int* best, const KernelCtx* ctx) {
  TTP_TRACE_SPAN(wave_span, "kernel.wave");
  wave_span.attr("states", static_cast<std::uint64_t>(count));
  wave_span.attr("actions", a.num_actions);
  const std::uint64_t evals =
      resolve_ops()->eval_states(a, wt, states, count, cost, best, ctx);
  TTP_METRIC_ADD("kernel.waves", 1);
  TTP_METRIC_HIST("kernel.wave_states", count);
  return evals;
}

void eval_pairs(const ActionSoA& a, const double* wt, const double* cost,
                const Mask* states, std::size_t begin, std::size_t end,
                double* m) {
  TTP_TRACE_SPAN(span, "kernel.pairs");
  span.attr("pairs", static_cast<std::uint64_t>(end - begin));
  resolve_ops()->eval_pairs(a, wt, cost, states, begin, end, m);
}

void reduce_pairs(const ActionSoA& a, const double* m, const Mask* states,
                  std::size_t begin, std::size_t end, double* cost, int* best) {
  TTP_TRACE_SPAN(span, "kernel.reduce");
  span.attr("states", static_cast<std::uint64_t>(end - begin));
  resolve_ops()->reduce_pairs(a, m, states, begin, end, cost, best);
}

SolveResult solve_with_arena(const Instance& ins, SolveArena& arena,
                             [[maybe_unused]] std::string_view span_name) {
  ins.check();
  SolveResult res;
  const int k = ins.k();
  const int N = ins.num_actions();
  const std::size_t states = std::size_t{1} << k;
  const std::vector<double>& wt = ins.subset_weight_table();

  TTP_TRACE_SPAN(root_span, span_name, res.steps);
  root_span.attr("k", k);
  root_span.attr("actions", N);
  root_span.attr("kernel", active_kernel_variant_name());

  const LayerIndex& layers = arena.layers(k);
  const ActionSoA& soa = arena.actions(ins);
  // Gather indices depend only on (k, action sets): free on reuse, one
  // AND-and-store pass when the arena sees a new action structure. Only
  // profitable while the index rows stay cache-resident, though — above
  // kPairIndexHotBytes the per-evaluation index loads cost more memory
  // traffic than the two register ANDs they replace (measured: k=14, N=20
  // is ~20% slower with the 2.6 MB index than without), so large solves
  // run ctx-free and the SIMD paths compute indices in-register.
  const bool want_ctx =
      active_kernel_variant() != KernelVariant::kScalar &&
      states * static_cast<std::size_t>(N) * 2 * sizeof(std::uint32_t) <=
          kPairIndexHotBytes;
  const PairIndex* pidx = want_ctx ? arena.pair_index() : nullptr;
  arena.prepare_tables(states);
  double* cost = arena.cost();
  int* best = arena.best();

  for (int j = 1; j <= k; ++j) {
    TTP_TRACE_SPAN(layer_span, "layer", res.steps);
    layer_span.attr("j", j);
    const std::span<const Mask> layer = layers.layer(j);
    KernelCtx ctx;
    if (pidx != nullptr) {
      ctx.inter = pidx->inter_row(j, 0);
      ctx.minus = pidx->minus_row(j, 0);
      ctx.stride = pidx->stride(j);
      ctx.base = 0;
    }
    const std::uint64_t evals =
        eval_states(soa, wt.data(), layer.data(), layer.size(), cost, best,
                    pidx != nullptr ? &ctx : nullptr);
    // Sequential cost model: one parallel step per M-evaluation.
    res.steps.charge(evals, evals);
  }

  TTP_METRIC_ADD(std::string("kernel.solves.") +
                     std::string(active_kernel_variant_name()),
                 1);
  res.table.k = k;
  res.table.cost.assign(arena.cost(), arena.cost() + states);
  res.table.best_action.assign(arena.best(), arena.best() + states);
  res.cost = res.table.root_cost();
  res.tree = reconstruct_tree(ins, res.table);
  res.breakdown.add("m_evaluations", res.steps.total_ops);
  return res;
}

}  // namespace ttp::tt
