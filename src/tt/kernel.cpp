#include "tt/kernel.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/bits.hpp"

namespace ttp::tt {

void ActionSoA::build(const Instance& ins) {
  const std::size_t n = static_cast<std::size_t>(ins.num_actions());
  set.resize(n);
  nset.resize(n);
  cost.resize(n);
  is_test.resize(n);
  num_tests = ins.num_tests();
  num_actions = ins.num_actions();
  for (std::size_t i = 0; i < n; ++i) {
    const Action& a = ins.action(static_cast<int>(i));
    set[i] = a.set;
    nset[i] = ~a.set;
    cost[i] = a.cost;
    is_test[i] = a.is_test ? 1 : 0;
  }
}

void LayerIndex::build(int k) {
  k_ = k;
  const std::size_t states = std::size_t{1} << k;
  masks_.resize(states);
  offsets_.assign(static_cast<std::size_t>(k) + 2, 0);
  for (std::size_t s = 0; s < states; ++s) {
    ++offsets_[static_cast<std::size_t>(util::popcount(static_cast<Mask>(s))) +
               1];
  }
  for (std::size_t j = 1; j < offsets_.size(); ++j) {
    offsets_[j] += offsets_[j - 1];
  }
  // Stable counting sort over ascending s keeps each layer ascending, the
  // order util::layer_subsets produces and the tests pin down.
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t s = 0; s < states; ++s) {
    const int j = util::popcount(static_cast<Mask>(s));
    masks_[cursor[static_cast<std::size_t>(j)]++] = static_cast<Mask>(s);
  }
}

void SolveArena::prepare_tables(std::size_t states) {
  cost_.assign(states, kInf);
  best_.assign(states, -1);
  cost_[0] = 0.0;
}

namespace {

/// One tile: `m` states against every action, tests first then treatments
/// (two branch-free runs), running best/argmin held in stack arrays.
inline void eval_tile(const ActionSoA& a, const double* __restrict wt,
                      const Mask* __restrict states, std::size_t m,
                      double* __restrict cost, int* __restrict best) {
  Mask s_arr[kKernelTile];
  double ws[kKernelTile];
  double bv[kKernelTile];
  int bi[kKernelTile];
  for (std::size_t t = 0; t < m; ++t) {
    s_arr[t] = states[t];
    ws[t] = wt[s_arr[t]];
    bv[t] = kInf;
    bi[t] = -1;
  }
  for (int i = 0; i < a.num_tests; ++i) {
    const Mask ts = a.set[static_cast<std::size_t>(i)];
    const Mask tn = a.nset[static_cast<std::size_t>(i)];
    const double tc = a.cost[static_cast<std::size_t>(i)];
    for (std::size_t t = 0; t < m; ++t) {
      const Mask s = s_arr[t];
      const Mask inter = s & ts;
      const Mask minus = s & tn;
      // Invalid splits read cost[0] == 0 or the state's own still-kInf
      // slot — finite-or-inf either way, never NaN — so the select after
      // the arithmetic gives the same value action_value's early returns
      // produce.
      double v = m_test_value(tc, ws[t], cost[inter], cost[minus]);
      v = ((inter == 0) | (minus == 0)) ? kInf : v;
      const bool lt = v < bv[t];
      bv[t] = lt ? v : bv[t];
      bi[t] = lt ? i : bi[t];
    }
  }
  for (int i = a.num_tests; i < a.num_actions; ++i) {
    const Mask ts = a.set[static_cast<std::size_t>(i)];
    const Mask tn = a.nset[static_cast<std::size_t>(i)];
    const double tc = a.cost[static_cast<std::size_t>(i)];
    for (std::size_t t = 0; t < m; ++t) {
      const Mask s = s_arr[t];
      const Mask inter = s & ts;
      const Mask minus = s & tn;
      double v = m_treat_value(tc, ws[t], cost[minus]);
      v = inter == 0 ? kInf : v;
      const bool lt = v < bv[t];
      bv[t] = lt ? v : bv[t];
      bi[t] = lt ? i : bi[t];
    }
  }
  for (std::size_t t = 0; t < m; ++t) {
    cost[s_arr[t]] = bv[t];
    best[s_arr[t]] = bi[t];
  }
}

}  // namespace

std::uint64_t eval_states(const ActionSoA& a, const double* wt,
                          const Mask* states, std::size_t count, double* cost,
                          int* best) {
  TTP_TRACE_SPAN(wave_span, "kernel.wave");
  wave_span.attr("states", static_cast<std::uint64_t>(count));
  wave_span.attr("actions", a.num_actions);
  for (std::size_t base = 0; base < count; base += kKernelTile) {
    const std::size_t m = std::min(kKernelTile, count - base);
    TTP_TRACE_SPAN(tile_span, "kernel.tile");
    tile_span.attr("base", static_cast<std::uint64_t>(base));
    tile_span.attr("states", static_cast<std::uint64_t>(m));
    eval_tile(a, wt, states + base, m, cost, best);
  }
  TTP_METRIC_ADD("kernel.waves", 1);
  TTP_METRIC_HIST("kernel.wave_states", count);
  return static_cast<std::uint64_t>(count) *
         static_cast<std::uint64_t>(a.num_actions);
}

void eval_pairs(const ActionSoA& a, const double* wt, const double* cost,
                const Mask* states, std::size_t begin, std::size_t end,
                double* m) {
  TTP_TRACE_SPAN(span, "kernel.pairs");
  span.attr("pairs", static_cast<std::uint64_t>(end - begin));
  const std::size_t n = static_cast<std::size_t>(a.num_actions);
  std::size_t pos = begin / n;
  std::size_t i = begin % n;
  for (std::size_t idx = begin; idx < end; ++idx) {
    const Mask s = states[pos];
    const Mask inter = s & a.set[i];
    const Mask minus = s & a.nset[i];
    double v;
    if (i < static_cast<std::size_t>(a.num_tests)) {
      v = m_test_value(a.cost[i], wt[s], cost[inter], cost[minus]);
      v = (inter == 0 || minus == 0) ? kInf : v;
    } else {
      v = m_treat_value(a.cost[i], wt[s], cost[minus]);
      v = inter == 0 ? kInf : v;
    }
    m[idx] = v;
    if (++i == n) {
      i = 0;
      ++pos;
    }
  }
}

void reduce_pairs(const ActionSoA& a, const double* m, const Mask* states,
                  std::size_t begin, std::size_t end, double* cost, int* best) {
  TTP_TRACE_SPAN(span, "kernel.reduce");
  span.attr("states", static_cast<std::uint64_t>(end - begin));
  const std::size_t n = static_cast<std::size_t>(a.num_actions);
  for (std::size_t pos = begin; pos < end; ++pos) {
    const double* row = m + pos * n;
    double bv = kInf;
    int bi = -1;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = row[i];
      const bool lt = v < bv;
      bv = lt ? v : bv;
      bi = lt ? static_cast<int>(i) : bi;
    }
    cost[states[pos]] = bv;
    best[states[pos]] = bi;
  }
}

SolveResult solve_with_arena(const Instance& ins, SolveArena& arena,
                             [[maybe_unused]] std::string_view span_name) {
  ins.check();
  SolveResult res;
  const int k = ins.k();
  const int N = ins.num_actions();
  const std::size_t states = std::size_t{1} << k;
  const std::vector<double>& wt = ins.subset_weight_table();

  TTP_TRACE_SPAN(root_span, span_name, res.steps);
  root_span.attr("k", k);
  root_span.attr("actions", N);

  const LayerIndex& layers = arena.layers(k);
  const ActionSoA& soa = arena.actions(ins);
  arena.prepare_tables(states);
  double* cost = arena.cost().data();
  int* best = arena.best().data();

  for (int j = 1; j <= k; ++j) {
    TTP_TRACE_SPAN(layer_span, "layer", res.steps);
    layer_span.attr("j", j);
    const std::span<const Mask> layer = layers.layer(j);
    const std::uint64_t evals =
        eval_states(soa, wt.data(), layer.data(), layer.size(), cost, best);
    // Sequential cost model: one parallel step per M-evaluation.
    res.steps.charge(evals, evals);
  }

  res.table.k = k;
  res.table.cost = arena.cost();
  res.table.best_action = arena.best();
  res.cost = res.table.root_cost();
  res.tree = reconstruct_tree(ins, res.table);
  res.breakdown.add("m_evaluations", res.steps.total_ops);
  return res;
}

}  // namespace ttp::tt
