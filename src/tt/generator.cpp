#include "tt/generator.hpp"

#include <algorithm>
#include <cmath>

namespace ttp::tt {

namespace {

double draw_cost(const RandomOptions& opt, util::Rng& rng) {
  if (opt.integer_costs) {
    return static_cast<double>(
        rng.uniform(1, static_cast<std::uint64_t>(std::max(1.0, opt.max_cost))));
  }
  return rng.uniform_real(opt.min_cost, opt.max_cost);
}

util::Mask density_subset(int k, double density, util::Rng& rng) {
  util::Mask m = 0;
  for (int j = 0; j < k; ++j) {
    if (rng.bernoulli(density)) m |= util::bit(j);
  }
  return m;
}

}  // namespace

Instance random_instance(int k, const RandomOptions& opt, util::Rng& rng) {
  std::vector<double> w(static_cast<std::size_t>(k));
  for (auto& x : w) {
    x = opt.integer_weights ? static_cast<double>(rng.uniform(1, 8))
                            : rng.uniform_real(0.1, 1.0);
  }
  Instance ins(k, std::move(w));
  for (int i = 0; i < opt.num_tests; ++i) {
    util::Mask s = density_subset(k, opt.test_density, rng);
    // A test equal to ∅ or U never splits anything; resample once, then keep
    // whatever comes (useless tests are legal, just never chosen).
    if (s == 0 || s == ins.universe()) s = rng.nonempty_subset(ins.universe());
    ins.add_test(s, draw_cost(opt, rng));
  }
  util::Mask covered = 0;
  for (int i = 0; i < opt.num_treatments; ++i) {
    util::Mask s = density_subset(k, opt.treat_density, rng);
    if (s == 0) s = rng.nonempty_subset(ins.universe());
    covered |= s;
    ins.add_treatment(s, draw_cost(opt, rng));
  }
  for (int j = 0; j < k; ++j) {
    if (!util::has_bit(covered, j)) {
      ins.add_treatment(util::bit(j), draw_cost(opt, rng));
    }
  }
  ins.check();
  return ins;
}

Instance medical_instance(int k, int num_tests, util::Rng& rng) {
  // Zipf-like priors: P_j ∝ 1/(j+1), shuffled so disease ids are arbitrary.
  std::vector<double> w(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) w[static_cast<std::size_t>(j)] = 1.0 / (j + 1);
  rng.shuffle(w);
  Instance ins(k, std::move(w));

  for (int i = 0; i < num_tests; ++i) {
    // Symptom panels implicate roughly half the diseases; lab panels that
    // implicate more diseases cost more (more assays).
    const util::Mask s = rng.nonempty_subset(ins.universe());
    const double cost = 0.5 + 0.1 * util::popcount(s) + rng.uniform_real(0, 0.5);
    ins.add_test(s, cost, "panel" + std::to_string(i));
  }
  // Narrow cures: one per disease, price inversely related to prevalence
  // (rare diseases have expensive specialty drugs).
  for (int j = 0; j < k; ++j) {
    const double cost = 2.0 + rng.uniform_real(0.0, 3.0);
    ins.add_treatment(util::bit(j), cost, "cure" + std::to_string(j));
  }
  // A few broad-spectrum treatments covering random clusters.
  const int broad = std::max(1, k / 4);
  for (int i = 0; i < broad; ++i) {
    util::Mask s = rng.nonempty_subset(ins.universe());
    s |= rng.nonempty_subset(ins.universe());
    ins.add_treatment(s, 4.0 + rng.uniform_real(0.0, 4.0),
                      "broad" + std::to_string(i));
  }
  ins.check();
  return ins;
}

Instance machine_fault_instance(int k, util::Rng& rng) {
  std::vector<double> w(static_cast<std::size_t>(k));
  for (auto& x : w) x = rng.uniform_real(0.2, 1.0);  // failure rates
  Instance ins(k, std::move(w));

  // Bisection probes over contiguous module ranges (a binary structure
  // tree): [0,k), then halves, quarters, ... Probing a bigger slice of the
  // machine costs more technician time.
  struct Range {
    int lo, hi;
  };
  std::vector<Range> stack{{0, k}};
  int t = 0;
  while (!stack.empty()) {
    const Range r = stack.back();
    stack.pop_back();
    if (r.hi - r.lo < 2) continue;
    const int mid = (r.lo + r.hi) / 2;
    util::Mask s = 0;
    for (int j = r.lo; j < mid; ++j) s |= util::bit(j);
    ins.add_test(s, 0.5 + 0.05 * (r.hi - r.lo), "probe" + std::to_string(t++));
    stack.push_back({r.lo, mid});
    stack.push_back({mid, r.hi});
  }
  // Replace single modules (cheap parts, variable) ...
  for (int j = 0; j < k; ++j) {
    ins.add_treatment(util::bit(j), 1.0 + rng.uniform_real(0.0, 2.0),
                      "swap" + std::to_string(j));
  }
  // ... or whole boards = aligned power-of-two groups (dearer, fixes any
  // fault inside the board).
  for (int width = 2; width <= k; width *= 2) {
    for (int lo = 0; lo + width <= k; lo += width) {
      util::Mask s = 0;
      for (int j = lo; j < lo + width; ++j) s |= util::bit(j);
      ins.add_treatment(s, 1.5 * width, "board" + std::to_string(lo) + "w" +
                                            std::to_string(width));
    }
  }
  ins.check();
  return ins;
}

Instance biology_key_instance(int k, util::Rng& rng) {
  // Taxa equally likely a priori (field identification).
  std::vector<double> w(static_cast<std::size_t>(k), 1.0);
  Instance ins(k, std::move(w));

  // Characters: random bipartitions biased toward taxonomy-like nesting —
  // generate by recursive splitting of a shuffled taxon order.
  std::vector<int> order(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) order[static_cast<std::size_t>(j)] = j;
  rng.shuffle(order);
  int c = 0;
  std::vector<std::pair<int, int>> ranges{{0, k}};
  while (!ranges.empty()) {
    auto [lo, hi] = ranges.back();
    ranges.pop_back();
    if (hi - lo < 2) continue;
    const int mid =
        lo + 1 + static_cast<int>(rng.uniform(0, static_cast<std::uint64_t>(hi - lo - 2)));
    util::Mask s = 0;
    for (int j = lo; j < mid; ++j) s |= util::bit(order[static_cast<std::size_t>(j)]);
    // Observing some characters needs only a hand lens (cheap), others need
    // dissection (dear).
    ins.add_test(s, rng.bernoulli(0.7) ? 1.0 : 3.0, "char" + std::to_string(c++));
    ranges.push_back({lo, mid});
    ranges.push_back({mid, hi});
  }
  for (int j = 0; j < k; ++j) {
    // Confirming an identification (e.g. a molecular check) = treatment.
    ins.add_treatment(util::bit(j), 2.0, "confirm" + std::to_string(j));
  }
  ins.check();
  return ins;
}

Instance lab_analysis_instance(int k, util::Rng& rng) {
  // Substances with log-uniform prevalence.
  std::vector<double> w(static_cast<std::size_t>(k));
  for (auto& x : w) x = std::exp(rng.uniform_real(-2.0, 0.0));
  Instance ins(k, std::move(w));

  // Cheap colorimetric screens: broad panels, cost ~0.3.
  const int screens = std::max(2, k / 2);
  for (int i = 0; i < screens; ++i) {
    util::Mask s = 0;
    for (int j = 0; j < k; ++j) {
      if (rng.bernoulli(0.5)) s |= util::bit(j);
    }
    if (s == 0 || s == ins.universe()) s = rng.nonempty_subset(ins.universe());
    ins.add_test(s, 0.3 + rng.uniform_real(0.0, 0.2),
                 "screen" + std::to_string(i));
  }
  // Dear chromatography: narrow (1-2 substances), cost ~2.
  for (int i = 0; i < k / 2 + 1; ++i) {
    util::Mask s = util::bit(static_cast<int>(rng.uniform(0, k - 1)));
    if (rng.bernoulli(0.5)) {
      s |= util::bit(static_cast<int>(rng.uniform(0, k - 1)));
    }
    ins.add_test(s, 2.0 + rng.uniform_real(0.0, 1.0),
                 "chroma" + std::to_string(i));
  }
  // Confirmation workups per substance group: random pairs + singletons to
  // guarantee adequacy.
  for (int j = 0; j < k; ++j) {
    ins.add_treatment(util::bit(j), 3.0 + rng.uniform_real(0.0, 2.0),
                      "workup" + std::to_string(j));
  }
  for (int i = 0; i < k / 3 + 1; ++i) {
    ins.add_treatment(rng.nonempty_subset(ins.universe()),
                      5.0 + rng.uniform_real(0.0, 3.0),
                      "groupwk" + std::to_string(i));
  }
  ins.check();
  return ins;
}

Instance logistics_instance(int k, util::Rng& rng) {
  // Subsystems along a route; failure rates rise with distance from the
  // depot (less maintenance out there).
  std::vector<double> w(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    w[static_cast<std::size_t>(j)] = 0.3 + 0.1 * j + rng.uniform_real(0, 0.2);
  }
  Instance ins(k, std::move(w));

  // Status queries over contiguous route segments [a, b).
  int t = 0;
  for (int a = 0; a < k; a += std::max(1, k / 4)) {
    for (int b = a + 1; b <= k; b += std::max(1, k / 3)) {
      util::Mask s = 0;
      for (int j = a; j < b; ++j) s |= util::bit(j);
      if (s == ins.universe()) continue;
      ins.add_test(s, 0.5 + 0.05 * (b - a), "query" + std::to_string(t++));
    }
  }
  // Repair crews cover contiguous blocks; cost = dispatch + per-stop work.
  for (int width : {1, 2, 4}) {
    for (int a = 0; a + width <= k; a += width) {
      util::Mask s = 0;
      for (int j = a; j < a + width; ++j) s |= util::bit(j);
      ins.add_treatment(s, 2.0 + 0.8 * width + 0.1 * a,
                        "crew" + std::to_string(a) + "w" +
                            std::to_string(width));
    }
  }
  // Cover a ragged tail (k not divisible by the widths).
  for (int j = 0; j < k; ++j) {
    bool covered = false;
    for (int i = ins.num_tests(); i < ins.num_actions(); ++i) {
      if (util::has_bit(ins.action(i).set, j)) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      ins.add_treatment(util::bit(j), 3.0, "crewx" + std::to_string(j));
    }
  }
  ins.check();
  return ins;
}

Instance binary_testing_instance(int k, int num_tests, util::Rng& rng) {
  std::vector<double> w(static_cast<std::size_t>(k));
  for (auto& x : w) x = rng.uniform_real(0.1, 1.0);
  Instance ins(k, std::move(w));
  for (int i = 0; i < num_tests; ++i) {
    ins.add_test(rng.nonempty_subset(ins.universe()), 1.0,
                 "q" + std::to_string(i));
  }
  for (int j = 0; j < k; ++j) {
    ins.add_treatment(util::bit(j), 1.0, "id" + std::to_string(j));
  }
  ins.check();
  return ins;
}

Instance complete_instance(int k) {
  std::vector<double> w(static_cast<std::size_t>(k), 1.0);
  Instance ins(k, std::move(w));
  const util::Mask U = ins.universe();
  for (util::Mask s = 1; s < U; ++s) {
    ins.add_test(s, 1.0);
  }
  for (util::Mask s = 1; s <= U; ++s) {
    ins.add_treatment(s, 1.0);
  }
  ins.check();
  return ins;
}

}  // namespace ttp::tt
