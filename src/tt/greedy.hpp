// Greedy baselines for solution-quality comparisons (bench E15).
//
// The paper motivates the DP by the NP-hardness of the problem; practical
// systems often fall back to myopic rules. We provide two classics adapted
// to the test-and-treatment setting; both produce valid procedure trees.
#pragma once

#include "tt/solver.hpp"

namespace ttp::tt {

enum class GreedyRule {
  /// At each state pick the action with the best immediate ratio:
  /// tests score cost / (weight-balance of the split), treatments score
  /// cost·p(S) / weight treated. A generalization of the classic
  /// split-half rule for binary testing.
  kBalancedSplit,
  /// Always treat if a treatment covers all of S cheaper than any test's
  /// cost bound; otherwise cheapest applicable action first.
  kCheapestFirst,
};

struct GreedyResult {
  Tree tree;
  double cost = kInf;  ///< Expected cost of the produced tree (kInf if the
                       ///< rule dead-ends; cannot happen on adequate inputs).
};

GreedyResult greedy_solve(const Instance& ins, GreedyRule rule);

}  // namespace ttp::tt
