#include "tt/analysis.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ttp::tt {

namespace {

// Walks object `obj` through the tree, invoking visit(node_index) per node.
template <typename Fn>
void walk(const Instance& ins, const Tree& tree, int obj, Fn&& visit) {
  int cur = tree.root();
  for (int steps = 0; steps <= tree.size(); ++steps) {
    const TreeNode& t = tree.node(cur);
    visit(cur);
    const Action& a = ins.action(t.action);
    const bool inside = util::has_bit(a.set, obj);
    int next;
    if (a.is_test) {
      next = inside ? t.yes : t.no;
    } else if (inside) {
      return;
    } else {
      next = t.no;
    }
    if (next < 0) {
      throw std::runtime_error("analyze: walk fell off the tree");
    }
    cur = next;
  }
  throw std::runtime_error("analyze: cycle detected");
}

}  // namespace

ProcedureStats analyze(const Instance& ins, const Tree& tree) {
  if (tree.empty()) {
    throw std::invalid_argument("analyze: empty tree");
  }
  ProcedureStats st;
  st.nodes = tree.size();
  st.depth = tree.depth();
  st.object_cost.resize(static_cast<std::size_t>(ins.k()), 0.0);
  st.object_actions.resize(static_cast<std::size_t>(ins.k()), 0);

  double total_weight_cost = 0.0;
  for (int j = 0; j < ins.k(); ++j) {
    const double w = ins.weight(j);
    walk(ins, tree, j, [&](int node) {
      const TreeNode& t = tree.node(node);
      const Action& a = ins.action(t.action);
      st.object_cost[static_cast<std::size_t>(j)] += a.cost;
      st.object_actions[static_cast<std::size_t>(j)] += 1;
      st.action_share[t.action] += a.cost * w;
      if (a.is_test) {
        st.expected_tests += w;
      } else {
        st.expected_treatments += w;
      }
    });
    total_weight_cost += st.object_cost[static_cast<std::size_t>(j)] * w;
  }
  const double total_w = ins.subset_weight(ins.universe());
  st.expected_cost = total_weight_cost;
  st.expected_tests /= total_w;
  st.expected_treatments /= total_w;
  // Normalize expected_cost the same way the paper's Cost(Tree) does: it
  // is already the weighted sum, NOT divided by total weight.
  return st;
}

double worst_case_cost(const Instance& ins, const Tree& tree) {
  double worst = 0.0;
  for (int j = 0; j < ins.k(); ++j) {
    worst = std::max(worst, tree.path_cost(ins, j));
  }
  return worst;
}

double expected_cost_under(const Instance& ins, const Tree& tree,
                           const std::vector<double>& priors) {
  if (static_cast<int>(priors.size()) != ins.k()) {
    throw std::invalid_argument("expected_cost_under: priors size");
  }
  double total = 0.0;
  for (int j = 0; j < ins.k(); ++j) {
    if (!(priors[static_cast<std::size_t>(j)] > 0.0)) {
      throw std::invalid_argument("expected_cost_under: priors positive");
    }
    total += tree.path_cost(ins, j) * priors[static_cast<std::size_t>(j)];
  }
  return total;
}

std::string ProcedureStats::to_string(const Instance& ins) const {
  std::ostringstream os;
  os << "expected cost " << expected_cost << ", depth " << depth << ", "
     << nodes << " nodes\n";
  os << "expected actions per case: " << expected_tests << " tests + "
     << expected_treatments << " treatments\n";
  os << "per-object (cost, actions):";
  for (std::size_t j = 0; j < object_cost.size(); ++j) {
    os << "  " << j << ":(" << object_cost[j] << "," << object_actions[j]
       << ")";
  }
  os << "\ncost share by action:\n";
  for (const auto& [i, share] : action_share) {
    os << "  " << ins.action(i).name << ": " << share << '\n';
  }
  return os.str();
}

}  // namespace ttp::tt
