// Sparse layer-wave kernel: StateMap plus the slot-indexed eval wave.
//
// The arithmetic here is deliberately a transcription of kernel.cpp's
// scalar tile and kernel_simd.cpp's portable 4-wide path with the mask
// indexing swapped for slot rows — every IEEE operation, the validity
// select placement, and the strict-< argmin blend are kept in the same
// order so the frontier solver's results stay bitwise identical to the
// dense solvers on the reachable states. Compiled with -ffp-contract=off
// (and -Wno-psabi for the vector-extension helpers) like every kernel TU.
#include "tt/kernel_sparse.hpp"

#include <algorithm>
#include <bit>

namespace ttp::tt {

void StateMap::reset(std::size_t expected) {
  std::size_t want = 16;
  while (want < expected * 2) want <<= 1;
  if (cells_.size() < want) {
    cells_.assign(want, Cell{kEmptyKey, 0});
  } else {
    std::fill(cells_.begin(), cells_.end(), Cell{kEmptyKey, 0});
  }
  index_mask_ = cells_.size() - 1;
  size_ = 0;
}

void StateMap::rehash(std::size_t capacity_pow2) {
  std::vector<Cell> old = std::move(cells_);
  cells_.assign(capacity_pow2, Cell{kEmptyKey, 0});
  index_mask_ = capacity_pow2 - 1;
  for (const Cell& c : old) {
    if (c.key == kEmptyKey) continue;
    std::size_t i = hash(c.key) & index_mask_;
    while (cells_[i].key != kEmptyKey) i = (i + 1) & index_mask_;
    cells_[i] = c;
  }
}

bool StateMap::insert(Mask key, std::uint32_t value) {
  assert(static_cast<std::uint32_t>(key) != kEmptyKey &&
         "StateMap: the all-ones mask is the empty sentinel");
  if (cells_.empty()) reset(16);
  if ((size_ + 1) * 2 > cells_.size()) rehash(cells_.size() * 2);
  std::size_t i = hash(key) & index_mask_;
  while (true) {
    Cell& c = cells_[i];
    if (c.key == key) return false;
    if (c.key == kEmptyKey) {
      c = Cell{static_cast<std::uint32_t>(key), value};
      ++size_;
      return true;
    }
    i = (i + 1) & index_mask_;
  }
}

namespace {

/// Scalar sparse tile sweep over [0, count): kernel.cpp's eval_tile_scalar
/// with child reads through slot rows and writes to slot_base + position.
std::uint64_t eval_sparse_scalar(const ActionSoA& a, const Mask* states,
                                 const double* ws, const std::uint32_t* inter,
                                 const std::uint32_t* minus,
                                 std::size_t stride, std::size_t count,
                                 double* cost, int* best,
                                 std::size_t slot_base) {
  for (std::size_t base = 0; base < count; base += kKernelTile) {
    const std::size_t m = std::min(kKernelTile, count - base);
    Mask s_arr[kKernelTile];
    double w[kKernelTile];
    double bv[kKernelTile];
    int bi[kKernelTile];
    for (std::size_t t = 0; t < m; ++t) {
      s_arr[t] = states[base + t];
      w[t] = ws[base + t];
      bv[t] = kInf;
      bi[t] = -1;
    }
    for (int i = 0; i < a.num_tests; ++i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      const Mask ts = a.set[ui];
      const Mask tn = a.nset[ui];
      const double tc = a.cost[ui];
      const std::uint32_t* ir = inter + ui * stride + base;
      const std::uint32_t* mr = minus + ui * stride + base;
      for (std::size_t t = 0; t < m; ++t) {
        const Mask s = s_arr[t];
        const Mask im = s & ts;
        const Mask mm = s & tn;
        // Invalid splits gather slot 0 (∅, cost 0) or the state's own
        // still-kInf slot — finite-or-inf either way, never NaN — and the
        // select after the arithmetic overrides them with kInf exactly as
        // the dense tile's mask-indexed reads end up.
        double v = m_test_value(tc, w[t], cost[ir[t]], cost[mr[t]]);
        v = ((im == 0) | (mm == 0)) ? kInf : v;
        const bool lt = v < bv[t];
        bv[t] = lt ? v : bv[t];
        bi[t] = lt ? i : bi[t];
      }
    }
    for (int i = a.num_tests; i < a.num_actions; ++i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      const Mask ts = a.set[ui];
      const double tc = a.cost[ui];
      const std::uint32_t* mr = minus + ui * stride + base;
      for (std::size_t t = 0; t < m; ++t) {
        const Mask s = s_arr[t];
        const Mask im = s & ts;
        double v = m_treat_value(tc, w[t], cost[mr[t]]);
        v = im == 0 ? kInf : v;
        const bool lt = v < bv[t];
        bv[t] = lt ? v : bv[t];
        bi[t] = lt ? i : bi[t];
      }
    }
    for (std::size_t t = 0; t < m; ++t) {
      cost[slot_base + base + t] = bv[t];
      best[slot_base + base + t] = bi[t];
    }
  }
  return static_cast<std::uint64_t>(count) *
         static_cast<std::uint64_t>(a.num_actions);
}

typedef double v4df __attribute__((vector_size(32)));
typedef long long v4di __attribute__((vector_size(32)));
typedef unsigned v4su __attribute__((vector_size(16)));

constexpr v4su kZero4 = {0, 0, 0, 0};

inline v4df blend_pd(v4di mask, v4df a, v4df b) {
  return reinterpret_cast<v4df>((mask & reinterpret_cast<v4di>(a)) |
                                (~mask & reinterpret_cast<v4di>(b)));
}

inline v4di blend_i64(v4di mask, v4di a, v4di b) {
  return (mask & a) | (~mask & b);
}

inline v4df gather_pd(const double* p, v4su idx) {
  return v4df{p[idx[0]], p[idx[1]], p[idx[2]], p[idx[3]]};
}

inline v4su load_u32(const std::uint32_t* p) {
  return v4su{p[0], p[1], p[2], p[3]};
}

/// Portable 4-wide sparse wave: one STATE per lane, ascending actions,
/// strict-< blend — kernel_simd.cpp's eval_states_portable with slot-row
/// gathers. Remainder states run the scalar sparse tile on the same rows
/// (offsetting the row base by `main` lands on the right entries because
/// the stride is unchanged).
std::uint64_t eval_sparse_portable(const ActionSoA& a, const Mask* states,
                                   const double* ws, const std::uint32_t* inter,
                                   const std::uint32_t* minus,
                                   std::size_t stride, std::size_t count,
                                   double* cost, int* best,
                                   std::size_t slot_base) {
  const v4df vinf = {kInf, kInf, kInf, kInf};
  const std::size_t main = count & ~std::size_t{3};
  for (std::size_t t = 0; t < main; t += 4) {
    const v4su s4 = load_u32(states + t);
    const v4df ps = {ws[t], ws[t + 1], ws[t + 2], ws[t + 3]};
    v4df bv = vinf;
    v4di bi = {-1, -1, -1, -1};
    for (int i = 0; i < a.num_actions; ++i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      const std::uint32_t* mr = minus + ui * stride + t;
      __builtin_prefetch(mr + 16);
      // Validity comes from the masks, in register; the rows are purely
      // gather indices.
      const Mask ts = a.set[ui];
      const v4su ivm = s4 & v4su{ts, ts, ts, ts};
      const double c = a.cost[ui];
      const v4df tc = {c, c, c, c};
      const v4df cm = gather_pd(cost, load_u32(mr));
      v4df v;
      v4di bad;
      if (i < a.num_tests) {
        const std::uint32_t* ir = inter + ui * stride + t;
        __builtin_prefetch(ir + 16);
        const Mask tn = a.nset[ui];
        const v4su mvm = s4 & v4su{tn, tn, tn, tn};
        const v4df ci = gather_pd(cost, load_u32(ir));
        v = (tc * ps + ci) + cm;  // m_test_value association, per lane
        bad = __builtin_convertvector(ivm == kZero4, v4di) |
              __builtin_convertvector(mvm == kZero4, v4di);
      } else {
        v = tc * ps + cm;  // m_treat_value
        bad = __builtin_convertvector(ivm == kZero4, v4di);
      }
      v = blend_pd(bad, vinf, v);
      const v4di lt = v < bv;  // strict <, exactly the scalar update
      bv = blend_pd(lt, v, bv);
      bi = blend_i64(lt, v4di{i, i, i, i}, bi);
    }
    for (int l = 0; l < 4; ++l) {
      const std::size_t slot = slot_base + t + static_cast<std::size_t>(l);
      cost[slot] = bv[l];
      best[slot] = static_cast<int>(bi[l]);
    }
  }
  std::uint64_t evals = static_cast<std::uint64_t>(main) *
                        static_cast<std::uint64_t>(a.num_actions);
  if (main < count) {
    evals += eval_sparse_scalar(a, states + main, ws + main, inter + main,
                                minus + main, stride, count - main, cost, best,
                                slot_base + main);
  }
  return evals;
}

}  // namespace

std::uint64_t eval_states_sparse(const ActionSoA& a, const Mask* states,
                                 const double* ws, const std::uint32_t* inter,
                                 const std::uint32_t* minus, std::size_t stride,
                                 std::size_t count, double* cost, int* best,
                                 std::size_t slot_base) {
  if (active_kernel_variant() == KernelVariant::kScalar) {
    return eval_sparse_scalar(a, states, ws, inter, minus, stride, count, cost,
                              best, slot_base);
  }
  return eval_sparse_portable(a, states, ws, inter, minus, stride, count, cost,
                              best, slot_base);
}

}  // namespace ttp::tt
