#include "tt/solver_ccc.hpp"

#include <cmath>

#include "obs/trace.hpp"

namespace ttp::tt {

net::CccConfig CccSolver::machine_shape(const Instance& ins) {
  const int dims = HypercubeSolver::machine_dims(ins);
  for (int r = 1; r < dims; ++r) {
    if (dims - r <= (1 << r)) return net::CccConfig{r, dims - r};
  }
  return net::CccConfig{dims - 1, 1};
}

SolveResult CccSolver::solve(const Instance& ins) const {
  ins.check();
  SolveResult res;
  const int k = ins.k();
  const int N = ins.num_actions();
  const int a = HypercubeSolver::action_dims(ins);
  const int npad = 1 << a;
  const std::vector<double>& wt = ins.subset_weight_table();

  net::CccMachine<TtPeState> m(machine_shape(ins));

  TTP_TRACE_SPAN(root_span, "solve.ccc", res.steps);
  root_span.attr("k", k);
  root_span.attr("ccc_r", m.config().r);
  root_span.attr("ccc_h", m.config().h);
  root_span.attr("pes", m.size());

  TTP_TRACE_SPAN(init_span, "init", m.steps());
  m.local_step([&](std::size_t pe, TtPeState& st) {
    const int i = static_cast<int>(pe) & (npad - 1);
    const Mask s = static_cast<Mask>(pe >> a);
    st.s = s;
    st.layer = util::popcount(s);
    st.best = i;
    if (i < N) {
      const Action& act = ins.action(i);
      st.t = act.set;
      st.is_test = act.is_test;
      st.pad = false;
      st.tp = s == 0 ? 0.0 : act.cost * wt[s];
    } else {
      st.t = ins.universe();
      st.is_test = false;
      st.pad = true;
      st.tp = kInf;
    }
    st.m = (s == 0) ? 0.0 : kInf;
    st.r = st.q = kInf;
  });
  init_span.finish();

  for (int j = 1; j <= k; ++j) {
    TTP_TRACE_SPAN(layer_span, "layer", m.steps());
    layer_span.attr("j", j);
    m.local_step([&](std::size_t, TtPeState& st) {
      st.r = st.m;
      st.q = st.m;
    });

    // e-loop over set dimensions a..a+k-1; one wave carries both the R and
    // the Q register (the CCC moves whole operands per step, so this is the
    // natural packing; the BVM solver pays the two passes the paper writes).
    m.ascend_range(a, a + k, [&](int dim, TtPeState& lo, TtPeState& hi) {
      const int e = dim - a;
      if (util::has_bit(hi.t, e)) {
        hi.r = lo.r;  // e ∈ S∩T_i
      } else {
        hi.q = lo.q;  // e ∈ S−T_i
      }
    });

    m.local_step([&](std::size_t pe, TtPeState& st) {
      if (st.layer != j) return;
      const int i = static_cast<int>(pe) & (npad - 1);
      // Same association order as action_value(): (TP + C(S∩T)) + C(S−T),
      // so doubles come out bitwise identical to the sequential solver.
      st.m = st.is_test ? (st.tp + st.q) + st.r : st.tp + st.r;
      st.best = i;
    });

    m.ascend_range(0, a, [&](int, TtPeState& lo, TtPeState& hi) {
      if (lo.layer != j) return;
      double bm = lo.m;
      int bi = lo.best;
      if (hi.m < bm || (hi.m == bm && hi.best < bi)) {
        bm = hi.m;
        bi = hi.best;
      }
      lo.m = hi.m = bm;
      lo.best = hi.best = bi;
    });
  }

  TTP_TRACE_SPAN(extract_span, "extract", m.steps());
  const std::size_t states = std::size_t{1} << k;
  res.table.k = k;
  res.table.cost.assign(states, kInf);
  res.table.best_action.assign(states, -1);
  res.table.cost[0] = 0.0;
  for (std::size_t s = 1; s < states; ++s) {
    const TtPeState& st = m.at(s << a);
    res.table.cost[s] = st.m;
    res.table.best_action[s] = std::isinf(st.m) ? -1 : st.best;
  }

  res.steps = m.steps();
  res.cost = res.table.root_cost();
  res.tree = reconstruct_tree(ins, res.table);
  res.breakdown.add("ccc_r", static_cast<std::uint64_t>(m.config().r));
  res.breakdown.add("ccc_h", static_cast<std::uint64_t>(m.config().h));
  res.breakdown.add("pes", m.size());
  res.breakdown.add("links", m.config().links());
  return res;
}

}  // namespace ttp::tt
