// Batched solving — the serving-shaped entry point.
//
// A traffic-serving deployment solves many independent TT instances per
// second, not one; BatchSolver pipelines a batch through the thread pool
// with one reusable SolveArena per worker, so steady-state throughput pays
// no per-solve layer re-derivation and no scratch allocation. Instances
// are pulled dynamically (not pre-chunked), so a batch mixing small and
// large instances keeps every worker busy until the queue drains.
//
// Each instance is solved by the same layer-wave kernel as
// SequentialSolver, with the sequential cost model per result
// (steps.total_ops == that instance's M-evaluation count); results come
// back in input order. Bench E23 measures instances/sec.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tt/solver.hpp"
#include "util/thread_pool.hpp"

namespace ttp::tt {

class BatchSolver {
 public:
  /// `workers` == 0 -> hardware concurrency.
  explicit BatchSolver(std::size_t workers = 0) : pool_(workers) {}

  /// Solves every instance (each must be a distinct object — the lazy
  /// p(S)-table cache is per instance and not thread-safe to share).
  /// Results are positionally aligned with the input.
  std::vector<SolveResult> solve_many(
      std::span<const Instance> instances) const;

  std::size_t workers() const noexcept { return pool_.size(); }

 private:
  mutable util::ThreadPool pool_;
};

}  // namespace ttp::tt
