// Batched solving — the serving-shaped entry point.
//
// A traffic-serving deployment solves many independent TT instances per
// second, not one; BatchSolver pipelines a batch through the thread pool
// with one reusable SolveArena per worker, so steady-state throughput pays
// no per-solve layer re-derivation and no scratch allocation. Instances
// are pulled dynamically (not pre-chunked), so a batch mixing small and
// large instances keeps every worker busy until the queue drains.
//
// Each instance is solved through the adaptive dense/sparse planner
// (tt/solver_frontier.hpp): below the planner's min_sparse_k the dense
// layer-wave arena path runs exactly as before; above it the reachable-
// closure sparse path takes over (each worker solving its own instance
// serially — instance-level parallelism already saturates the pool, so
// the frontier's internal pool stays unused here). Either path charges the
// sequential cost model per result (steps.total_ops == that instance's
// M-evaluation count); results come back in input order. Bench E23
// measures instances/sec.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tt/solver.hpp"
#include "tt/solver_frontier.hpp"
#include "util/thread_pool.hpp"

namespace ttp::tt {

class BatchSolver {
 public:
  /// `workers` == 0 -> hardware concurrency. `planner` configures the
  /// per-instance dense/sparse dispatch; the default keeps every k ≤ 14
  /// instance on the dense path.
  explicit BatchSolver(std::size_t workers = 0, FrontierConfig planner = {})
      : pool_(workers), planner_(planner) {}

  /// Solves every instance; results are positionally aligned with the input.
  /// (Elements of a contiguous span are distinct objects by construction, so
  /// the pointer-overload's aliasing restriction cannot be violated here.)
  std::vector<SolveResult> solve_many(
      std::span<const Instance> instances) const;

  /// Pointer-span overload for callers whose instances are not contiguous
  /// (e.g. the svc scheduler's queued entries). NO ALIASING: all pointers
  /// must refer to distinct Instance objects. The lazy p(S) subset-weight
  /// table is a mutable per-instance cache with no synchronization, so two
  /// pool workers solving the same object race on it; debug builds assert
  /// distinctness, release builds do not check.
  ///
  /// `traces`, when non-empty, must be positionally aligned with
  /// `instances`: the worker binds traces[i] as the obs trace ID around
  /// instance i's solve, so the per-instance kernel spans ("solve.batch")
  /// carry the request's trace ID even though they run on pool threads.
  std::vector<SolveResult> solve_many(
      std::span<const Instance* const> instances,
      std::span<const std::uint64_t> traces = {}) const;

  std::size_t workers() const noexcept { return pool_.size(); }
  const FrontierConfig& planner() const noexcept { return planner_; }

 private:
  mutable util::ThreadPool pool_;
  FrontierConfig planner_;
};

}  // namespace ttp::tt
