#include "tt/solver_exhaustive.hpp"

#include <cmath>
#include <functional>

#include "obs/trace.hpp"

namespace ttp::tt {

SolveResult RecursiveSolver::solve(const Instance& ins) const {
  ins.check();
  SolveResult res;
  const int k = ins.k();
  const int N = ins.num_actions();
  const std::size_t states = std::size_t{1} << k;
  const std::vector<double>& wt = ins.subset_weight_table();

  TTP_TRACE_SPAN(root_span, "solve.recursive", res.steps);
  root_span.attr("k", k);
  root_span.attr("actions", N);

  res.table.k = k;
  res.table.cost.assign(states, kInf);
  res.table.best_action.assign(states, -1);
  std::vector<char> done(states, 0);
  res.table.cost[0] = 0.0;
  done[0] = 1;

  std::function<double(Mask)> C = [&](Mask s) -> double {
    if (done[s]) return res.table.cost[s];
    done[s] = 1;  // safe: all recursive calls are on strictly smaller sets
    double best = kInf;
    int arg = -1;
    for (int i = 0; i < N; ++i) {
      const Action& a = ins.action(i);
      const Mask inter = s & a.set;
      const Mask minus = s & ~a.set;
      double v;
      if (a.is_test) {
        if (inter == 0 || minus == 0) continue;
        v = a.cost * wt[s] + C(inter) + C(minus);
      } else {
        if (inter == 0) continue;
        v = a.cost * wt[s] + C(minus);
      }
      res.steps.step(1);
      if (v < best) {
        best = v;
        arg = i;
      }
    }
    res.table.cost[s] = best;
    res.table.best_action[s] = arg;
    return best;
  };

  C(ins.universe());
  // Fill in states the root never touched, so table comparisons are total.
  for (std::size_t s = 1; s < states; ++s) {
    if (!done[s]) C(static_cast<Mask>(s));
  }

  res.cost = res.table.root_cost();
  res.tree = reconstruct_tree(ins, res.table);
  return res;
}

namespace {

// Cheapest expected cost of any procedure for candidate set `s` using at
// most `budget` tree nodes (kInf if none succeeds). Pure enumeration over
// root action and node-budget splits — exponential, tiny inputs only.
double enum_rec(const Instance& ins, const std::vector<double>& wt, Mask s,
                int budget) {
  if (s == 0) return 0.0;
  if (budget <= 0) return kInf;
  double best = kInf;
  for (int i = 0; i < ins.num_actions(); ++i) {
    const Action& a = ins.action(i);
    const Mask inter = s & a.set;
    const Mask minus = s & ~a.set;
    if (a.is_test) {
      if (inter == 0 || minus == 0) continue;
      // Try every split of the remaining node budget between the subtrees.
      for (int left = 1; left <= budget - 2; ++left) {
        const double lv = enum_rec(ins, wt, inter, left);
        if (std::isinf(lv)) continue;
        const double rv = enum_rec(ins, wt, minus, budget - 1 - left);
        if (std::isinf(rv)) continue;
        const double v = a.cost * wt[s] + lv + rv;
        if (v < best) best = v;
      }
    } else {
      if (inter == 0) continue;
      const double rv = enum_rec(ins, wt, minus, budget - 1);
      if (std::isinf(rv)) continue;
      const double v = a.cost * wt[s] + rv;
      if (v < best) best = v;
    }
  }
  return best;
}

}  // namespace

std::optional<double> enumerate_min_cost(const Instance& ins, int max_nodes) {
  ins.check();
  const std::vector<double>& wt = ins.subset_weight_table();
  const double v = enum_rec(ins, wt, ins.universe(), max_nodes);
  if (std::isinf(v)) return std::nullopt;
  return v;
}

}  // namespace ttp::tt
