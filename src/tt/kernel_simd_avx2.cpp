// AVX2 kernel variant: hardware-gathered table reads, vector blend
// min/argmin. Same lane discipline as kernel_simd.cpp — one STATE per
// lane, actions ascending, strict-< blend — so results are byte-identical
// to the scalar reference (see the proof sketch there and in
// docs/kernel.md). The payoff over the portable variant is
// _mm256_i32gather_pd for the two data-dependent C-table reads per
// evaluation, which the baseline ISA has to do with four scalar loads
// each.
//
// Build contract (src/CMakeLists.txt): this TU alone is compiled with
// -mavx2 -ffp-contract=off. -mavx2 does NOT enable FMA, and contraction is
// off besides, so the multiply/add sequence rounds exactly like the scalar
// path — a silent fused multiply-add here would break byte-identity.
// Dispatch guarantees this code only runs after __builtin_cpu_supports
// ("avx2") says yes, so the shipped binary stays portable.
#if defined(TTP_KERNEL_HAS_AVX2)

#include <immintrin.h>

#include <cstdint>

#include "tt/kernel.hpp"

namespace ttp::tt::detail {
namespace {

/// All-lanes gather with an explicit zero source operand. Identical
/// codegen to the plain intrinsic (vgatherdpd always takes a mask), but
/// GCC's plain _mm256_i32gather_pd leaves the source undefined, which
/// trips -Wmaybe-uninitialized.
inline __m256d gather_pd(const double* p, __m128i idx) {
  return _mm256_mask_i32gather_pd(
      _mm256_setzero_pd(), p, idx,
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
}

inline __m256d gather64_pd(const double* p, __m256i idx) {
  return _mm256_mask_i64gather_pd(
      _mm256_setzero_pd(), p, idx,
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
}

/// cost/best writeback for four lanes (AVX2 has gathers but no scatters).
inline void store_lanes(const Mask* states, std::size_t t, __m256d bv,
                        __m256i bi, double* cost, int* best) {
  alignas(32) double bva[4];
  alignas(32) long long bia[4];
  _mm256_store_pd(bva, bv);
  _mm256_store_si256(reinterpret_cast<__m256i*>(bia), bi);
  for (std::size_t l = 0; l < 4; ++l) {
    cost[states[t + l]] = bva[l];
    best[states[t + l]] = static_cast<int>(bia[l]);
  }
}

/// M[S,i] + validity select for four states (lanes of s4/iv/mv). The exact
/// lane-for-lane arithmetic of the scalar loop: (t_i·p(S) + C(S∩T_i)) +
/// C(S−T_i) — m_test_value association — then the invalid-split select.
inline __m256d action_value_4(const double* cost, __m256d tc, __m256d ps,
                              __m128i iv, __m128i mv, bool test,
                              __m256d vinf) {
  const __m128i zero = _mm_setzero_si128();
  const __m256d cm = gather_pd(cost, mv);
  __m256d v;
  __m128i bad32;
  if (test) {
    const __m256d ci = gather_pd(cost, iv);
    v = _mm256_add_pd(_mm256_add_pd(_mm256_mul_pd(tc, ps), ci), cm);
    bad32 =
        _mm_or_si128(_mm_cmpeq_epi32(iv, zero), _mm_cmpeq_epi32(mv, zero));
  } else {
    v = _mm256_add_pd(_mm256_mul_pd(tc, ps), cm);
    bad32 = _mm_cmpeq_epi32(iv, zero);
  }
  const __m256d bad = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(bad32));
  return _mm256_blendv_pd(v, vinf, bad);
}

/// Strict ordered <, the scalar update verbatim: ties keep the earlier
/// (lower) action index.
inline void min_update_4(__m256d v, int i, __m256d& bv, __m256i& bi) {
  const __m256d lt = _mm256_cmp_pd(v, bv, _CMP_LT_OQ);
  bv = _mm256_blendv_pd(bv, v, lt);
  bi = _mm256_blendv_epi8(bi, _mm256_set1_epi64x(i), _mm256_castpd_si256(lt));
}

/// 4·U states starting at states[t]: U independent four-lane running-min
/// chains walked through every action. One chain's cmp/blend tail is a
/// short dependency chain that leaves the gather units idle between
/// actions; U chains overlap each other's gathers with the others'
/// arithmetic. U is a compile-time constant so the c-loops fully unroll
/// and each chain's ps/bv/bi live in their own registers.
template <int U>
inline void eval_chains(const ActionSoA& a, const double* wt,
                        const Mask* states, std::size_t t,
                        const KernelCtx* ctx, double* cost, int* best,
                        __m256d vinf) {
  __m128i s[U];
  __m256d ps[U], bv[U];
  __m256i bi[U];
  for (int c = 0; c < U; ++c) {
    s[c] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(states + t + 4 * c));
    ps[c] = gather_pd(wt, s[c]);
    bv[c] = vinf;
    bi[c] = _mm256_set1_epi64x(-1);
  }
  for (int i = 0; i < a.num_actions; ++i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    __m128i iv[U], mv[U];
    if (ctx != nullptr) {
      const std::uint32_t* ir = ctx->inter + ui * ctx->stride + ctx->base + t;
      const std::uint32_t* mr = ctx->minus + ui * ctx->stride + ctx->base + t;
      // Pull the next block's indices for this action row; the N rows are
      // touched round-robin, one 16·U-byte step per block.
      _mm_prefetch(reinterpret_cast<const char*>(ir + 4 * U), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(mr + 4 * U), _MM_HINT_T0);
      for (int c = 0; c < U; ++c) {
        iv[c] = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(ir + 4 * c));
        mv[c] = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(mr + 4 * c));
      }
    } else {
      const __m128i ts = _mm_set1_epi32(static_cast<int>(a.set[ui]));
      const __m128i tn = _mm_set1_epi32(static_cast<int>(a.nset[ui]));
      for (int c = 0; c < U; ++c) {
        iv[c] = _mm_and_si128(s[c], ts);
        mv[c] = _mm_and_si128(s[c], tn);
      }
    }
    const __m256d tc = _mm256_set1_pd(a.cost[ui]);
    const bool test = i < a.num_tests;
    __m256d v[U];
    for (int c = 0; c < U; ++c) {
      v[c] = action_value_4(cost, tc, ps[c], iv[c], mv[c], test, vinf);
    }
    for (int c = 0; c < U; ++c) {
      min_update_4(v[c], i, bv[c], bi[c]);
    }
  }
  for (int c = 0; c < U; ++c) {
    store_lanes(states, t + 4 * c, bv[c], bi[c], cost, best);
  }
}

std::uint64_t eval_states_avx2(const ActionSoA& a, const double* wt,
                               const Mask* states, std::size_t count,
                               double* cost, int* best, const KernelCtx* ctx) {
  const __m256d vinf = _mm256_set1_pd(kInf);
  std::size_t t = 0;
  for (; t + 16 <= count; t += 16) {
    eval_chains<4>(a, wt, states, t, ctx, cost, best, vinf);
  }
  for (; t + 8 <= count; t += 8) {
    eval_chains<2>(a, wt, states, t, ctx, cost, best, vinf);
  }
  for (; t + 4 <= count; t += 4) {
    eval_chains<1>(a, wt, states, t, ctx, cost, best, vinf);
  }
  if (t < count) {
    eval_tile_scalar(a, wt, states + t, count - t, cost, best);
  }
  return static_cast<std::uint64_t>(count) *
         static_cast<std::uint64_t>(a.num_actions);
}

/// Actions [i0, i1) of one pair row (all tests or all treatments),
/// vectorized over the action axis — elementwise, no reduction.
void eval_pair_run(const ActionSoA& a, double ws, const double* cost, Mask s,
                   std::size_t i0, std::size_t i1, bool tests, double* out) {
  const __m256d vinf = _mm256_set1_pd(kInf);
  const __m128i zero = _mm_setzero_si128();
  const __m128i s4 = _mm_set1_epi32(static_cast<int>(s));
  const __m256d ps = _mm256_set1_pd(ws);
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const __m128i ts =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.set.data() + i));
    const __m128i tn =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.nset.data() + i));
    const __m128i iv = _mm_and_si128(s4, ts);
    const __m128i mv = _mm_and_si128(s4, tn);
    const __m256d tc = _mm256_loadu_pd(a.cost.data() + i);
    const __m256d cm = gather_pd(cost, mv);
    __m256d v;
    __m128i bad32;
    if (tests) {
      const __m256d ci = gather_pd(cost, iv);
      v = _mm256_add_pd(_mm256_add_pd(_mm256_mul_pd(tc, ps), ci), cm);
      bad32 =
          _mm_or_si128(_mm_cmpeq_epi32(iv, zero), _mm_cmpeq_epi32(mv, zero));
    } else {
      v = _mm256_add_pd(_mm256_mul_pd(tc, ps), cm);
      bad32 = _mm_cmpeq_epi32(iv, zero);
    }
    const __m256d bad = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(bad32));
    v = _mm256_blendv_pd(v, vinf, bad);
    _mm256_storeu_pd(out + (i - i0), v);
  }
  for (; i < i1; ++i) {
    const Mask inter = s & a.set[i];
    const Mask minus = s & a.nset[i];
    double v;
    if (tests) {
      v = m_test_value(a.cost[i], ws, cost[inter], cost[minus]);
      v = (inter == 0 || minus == 0) ? kInf : v;
    } else {
      v = m_treat_value(a.cost[i], ws, cost[minus]);
      v = inter == 0 ? kInf : v;
    }
    out[i - i0] = v;
  }
}

void eval_pairs_avx2(const ActionSoA& a, const double* wt, const double* cost,
                     const Mask* states, std::size_t begin, std::size_t end,
                     double* m) {
  const std::size_t n = static_cast<std::size_t>(a.num_actions);
  const std::size_t nt = static_cast<std::size_t>(a.num_tests);
  std::size_t idx = begin;
  while (idx < end) {
    const std::size_t pos = idx / n;
    const std::size_t i0 = idx % n;
    const std::size_t i1 = std::min(n, i0 + (end - idx));
    const Mask s = states[pos];
    const double ws = wt[s];
    if (i0 < nt) {
      const std::size_t te = std::min(i1, nt);
      eval_pair_run(a, ws, cost, s, i0, te, true, m + idx);
      if (i1 > nt) {
        eval_pair_run(a, ws, cost, s, nt, i1, false, m + idx + (nt - i0));
      }
    } else {
      eval_pair_run(a, ws, cost, s, i0, i1, false, m + idx);
    }
    idx += i1 - i0;
  }
}

void reduce_pairs_avx2(const ActionSoA& a, const double* m, const Mask* states,
                       std::size_t begin, std::size_t end, double* cost,
                       int* best) {
  const std::size_t n = static_cast<std::size_t>(a.num_actions);
  const __m256d vinf = _mm256_set1_pd(kInf);
  std::size_t pos = begin;
  for (; pos + 4 <= end; pos += 4) {
    // Row bases can exceed 32 bits for huge pair buffers; use the 64-bit
    // gather form.
    const __m256i rowbase = _mm256_set_epi64x(
        static_cast<long long>((pos + 3) * n),
        static_cast<long long>((pos + 2) * n),
        static_cast<long long>((pos + 1) * n), static_cast<long long>(pos * n));
    __m256d bv = vinf;
    __m256i bi = _mm256_set1_epi64x(-1);
    for (std::size_t i = 0; i < n; ++i) {
      const __m256i idx =
          _mm256_add_epi64(rowbase, _mm256_set1_epi64x(static_cast<long long>(i)));
      const __m256d v = gather64_pd(m, idx);
      const __m256d lt = _mm256_cmp_pd(v, bv, _CMP_LT_OQ);
      bv = _mm256_blendv_pd(bv, v, lt);
      bi = _mm256_blendv_epi8(
          bi, _mm256_set1_epi64x(static_cast<long long>(i)),
          _mm256_castpd_si256(lt));
    }
    alignas(32) double bva[4];
    alignas(32) long long bia[4];
    _mm256_store_pd(bva, bv);
    _mm256_store_si256(reinterpret_cast<__m256i*>(bia), bi);
    for (std::size_t l = 0; l < 4; ++l) {
      cost[states[pos + l]] = bva[l];
      best[states[pos + l]] = static_cast<int>(bia[l]);
    }
  }
  for (; pos < end; ++pos) {
    const double* row = m + pos * n;
    double bv = kInf;
    int bi = -1;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = row[i];
      const bool lt = v < bv;
      bv = lt ? v : bv;
      bi = lt ? static_cast<int>(i) : bi;
    }
    cost[states[pos]] = bv;
    best[states[pos]] = bi;
  }
}

}  // namespace

const KernelOps& avx2_ops() noexcept {
  static constexpr KernelOps ops{eval_states_avx2, eval_pairs_avx2,
                                 reduce_pairs_avx2, KernelVariant::kSimdAvx2};
  return ops;
}

}  // namespace ttp::tt::detail

#endif  // TTP_KERNEL_HAS_AVX2
