// Shared-memory parallel DP (the hardware-substitute baseline, bench E12).
//
// The layer schedule is the same as the paper's parallel algorithm — all
// (S, i) pairs inside layer |S| = j are independent once layers < j are
// final — so a thread pool sweeps each layer with parallel_for. Results are
// bitwise identical to SequentialSolver (same kernel, same tie-breaking,
// disjoint writes).
//
// steps.parallel_steps models a `width`-wide PRAM: per layer,
// ceil(layer_states/width) rounds of N-way minimization.
#pragma once

#include <cstddef>

#include "tt/solver.hpp"
#include "util/thread_pool.hpp"

namespace ttp::tt {

class ThreadsSolver {
 public:
  /// Work decomposition per DP layer.
  enum class Mode {
    kStateParallel,  ///< one task per state S; each scans all N actions
    kPairParallel,   ///< one task per (S, i) pair into an M buffer, then a
                     ///< parallel per-state min — the paper's decomposition
                     ///< transplanted to shared memory
  };

  /// `workers` == 0 -> hardware concurrency.
  explicit ThreadsSolver(std::size_t workers = 0,
                         Mode mode = Mode::kStateParallel)
      : pool_(workers), mode_(mode) {}

  SolveResult solve(const Instance& ins) const;

  std::size_t workers() const noexcept { return pool_.size(); }

 private:
  mutable util::ThreadPool pool_;
  Mode mode_;
};

}  // namespace ttp::tt
