// Shared-memory parallel DP (the hardware-substitute baseline, bench E12).
//
// The layer schedule is the same as the paper's parallel algorithm — all
// (S, i) pairs inside layer |S| = j are independent once layers < j are
// final — so a thread pool sweeps each layer through the shared layer-wave
// kernel (tt/kernel.hpp). Results are bitwise identical to
// SequentialSolver (same kernel, same tie-breaking, disjoint writes).
//
// Normative step accounting (both modes; see solver.hpp):
//   steps.parallel_steps == Σ_j ceil(|layer j| / width)   (one step per
//       width-wide round of N-way state evaluations)
//   steps.total_ops      == N · (2^k − 1)                 (every M[S,i]
//       evaluation, the partial final round charged at its true size —
//       equal to SequentialSolver's evaluation count by construction)
// The mode changes only the shared-memory work decomposition, never the
// simulated cost model.
#pragma once

#include <atomic>
#include <cstddef>

#include "tt/kernel.hpp"
#include "tt/solver.hpp"
#include "util/thread_pool.hpp"

namespace ttp::tt {

/// Thread safety: one ThreadsSolver owns one mutable SolveArena, reused
/// across solves exactly like BatchSolver's per-worker arenas — so
/// solve() is single-caller: two concurrent calls on the same object race
/// on the shared tables (same aliasing rule as solver_batch.hpp's
/// pointer-span overload; debug builds assert). Distinct ThreadsSolver
/// objects are fully independent. SequentialSolver, by contrast, keeps
/// its arena thread_local and is safe to share across threads.
class ThreadsSolver {
 public:
  /// Work decomposition per DP layer.
  enum class Mode {
    kStateParallel,  ///< one task per state S; each scans all N actions
    kPairParallel,   ///< one task per (S, i) pair into an M buffer, then a
                     ///< parallel per-state min — the paper's decomposition
                     ///< transplanted to shared memory
  };

  /// `workers` == 0 -> hardware concurrency.
  explicit ThreadsSolver(std::size_t workers = 0,
                         Mode mode = Mode::kStateParallel)
      : pool_(workers), mode_(mode) {}

  SolveResult solve(const Instance& ins) const;

  std::size_t workers() const noexcept { return pool_.size(); }

 private:
  mutable util::ThreadPool pool_;
  mutable SolveArena arena_;  ///< reused across solves, like pool_
  mutable std::atomic<bool> in_solve_{false};  ///< debug re-entrancy guard
  Mode mode_;
};

}  // namespace ttp::tt
