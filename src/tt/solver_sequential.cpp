#include "tt/solver_sequential.hpp"

#include "tt/kernel.hpp"

namespace ttp::tt {

double action_value(const Instance& ins, const std::vector<double>& cost,
                    const std::vector<double>& weight_table, Mask s, int i) {
  const Action& a = ins.action(i);
  const Mask inter = s & a.set;
  const Mask minus = s & ~a.set;
  if (a.is_test) {
    if (inter == 0 || minus == 0) return kInf;  // test does not split S
    return m_test_value(a.cost, weight_table[s], cost[inter], cost[minus]);
  }
  if (inter == 0) return kInf;  // treatment treats nobody in S
  return m_treat_value(a.cost, weight_table[s], cost[minus]);
}

SolveResult SequentialSolver::solve(const Instance& ins) const {
  // One arena per solving thread, reused across solves: steady-state
  // callers pay no layer re-derivation and no scratch allocation.
  static thread_local SolveArena arena;
  return solve_with_arena(ins, arena, "solve.sequential");
}

}  // namespace ttp::tt
