#include "tt/solver_sequential.hpp"

#include "obs/trace.hpp"

namespace ttp::tt {

double action_value(const Instance& ins, const std::vector<double>& cost,
                    const std::vector<double>& weight_table, Mask s, int i) {
  const Action& a = ins.action(i);
  const Mask inter = s & a.set;
  const Mask minus = s & ~a.set;
  if (a.is_test) {
    if (inter == 0 || minus == 0) return kInf;  // test does not split S
    return a.cost * weight_table[s] + cost[inter] + cost[minus];
  }
  if (inter == 0) return kInf;  // treatment treats nobody in S
  return a.cost * weight_table[s] + cost[minus];
}

SolveResult SequentialSolver::solve(const Instance& ins) const {
  ins.check();
  SolveResult res;
  const int k = ins.k();
  const int N = ins.num_actions();
  const std::size_t states = std::size_t{1} << k;
  const std::vector<double>& wt = ins.subset_weight_table();

  TTP_TRACE_SPAN(root_span, "solve.sequential", res.steps);
  root_span.attr("k", k);
  root_span.attr("actions", N);

  res.table.k = k;
  res.table.cost.assign(states, kInf);
  res.table.best_action.assign(states, -1);
  res.table.cost[0] = 0.0;

  for (int j = 1; j <= k; ++j) {
    TTP_TRACE_SPAN(layer_span, "layer", res.steps);
    layer_span.attr("j", j);
    for (Mask s : util::layer_subsets(k, j)) {
      double best = kInf;
      int arg = -1;
      for (int i = 0; i < N; ++i) {
        const double v = action_value(ins, res.table.cost, wt, s, i);
        res.steps.step(1);
        if (v < best) {  // strict: ties keep the lower action index
          best = v;
          arg = i;
        }
      }
      res.table.cost[s] = best;
      res.table.best_action[s] = arg;
    }
  }

  res.cost = res.table.root_cost();
  res.tree = reconstruct_tree(ins, res.table);
  res.breakdown.add("m_evaluations", res.steps.total_ops);
  return res;
}

}  // namespace ttp::tt
