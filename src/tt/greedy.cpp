#include "tt/greedy.hpp"

#include <cmath>

namespace ttp::tt {

namespace {

// Picks the next action for candidate set `s`, or -1 on a dead end.
int pick(const Instance& ins, const std::vector<double>& wt, Mask s,
         GreedyRule rule) {
  const int N = ins.num_actions();
  if (rule == GreedyRule::kCheapestFirst) {
    // Prefer the cheapest treatment that finishes the whole branch.
    int best = -1;
    for (int i = ins.num_tests(); i < N; ++i) {
      const Action& a = ins.action(i);
      if ((s & ~a.set) == 0) {
        if (best < 0 || a.cost < ins.action(best).cost) best = i;
      }
    }
    if (best >= 0) return best;
    // Otherwise cheapest applicable action of any kind.
    for (int i = 0; i < N; ++i) {
      const Action& a = ins.action(i);
      const Mask inter = s & a.set;
      const Mask minus = s & ~a.set;
      const bool usable = a.is_test ? (inter != 0 && minus != 0) : (inter != 0);
      if (!usable) continue;
      if (best < 0 || a.cost < ins.action(best).cost) best = i;
    }
    return best;
  }

  // kBalancedSplit: minimize immediate cost per unit of progress.
  double best_score = kInf;
  int best = -1;
  for (int i = 0; i < N; ++i) {
    const Action& a = ins.action(i);
    const Mask inter = s & a.set;
    const Mask minus = s & ~a.set;
    double score;
    if (a.is_test) {
      if (inter == 0 || minus == 0) continue;
      const double lo = std::min(wt[inter], wt[minus]);
      score = a.cost * wt[s] / lo;
    } else {
      if (inter == 0) continue;
      score = a.cost * wt[s] / wt[inter];
    }
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

int build(const Instance& ins, const std::vector<double>& wt, Mask s,
          GreedyRule rule, std::vector<TreeNode>& nodes, bool& failed) {
  const int a = pick(ins, wt, s, rule);
  if (a < 0) {
    failed = true;
    return -1;
  }
  const Action& act = ins.action(a);
  const int self = static_cast<int>(nodes.size());
  nodes.push_back(TreeNode{s, a, -1, -1});
  if (act.is_test) {
    const int yes = build(ins, wt, s & act.set, rule, nodes, failed);
    const int no = build(ins, wt, s & ~act.set, rule, nodes, failed);
    nodes[static_cast<std::size_t>(self)].yes = yes;
    nodes[static_cast<std::size_t>(self)].no = no;
  } else {
    const Mask minus = s & ~act.set;
    if (minus != 0) {
      nodes[static_cast<std::size_t>(self)].no =
          build(ins, wt, minus, rule, nodes, failed);
    }
  }
  return self;
}

}  // namespace

GreedyResult greedy_solve(const Instance& ins, GreedyRule rule) {
  ins.check();
  GreedyResult out;
  std::vector<TreeNode> nodes;
  bool failed = false;
  const int root =
      build(ins, ins.subset_weight_table(), ins.universe(), rule, nodes, failed);
  if (failed || root < 0) return out;
  out.tree = Tree(std::move(nodes), root);
  out.cost = out.tree.expected_cost(ins);
  return out;
}

}  // namespace ttp::tt
