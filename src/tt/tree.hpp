// TT procedure trees (paper Fig. 1).
//
// A procedure is a binary decision tree over candidate sets. A test node has
// a positive-outcome child (candidate set S∩T_i) and a negative child
// (S-T_i). A treatment node treats S∩T_i; its only outgoing arc is the
// failure continuation on S-T_i (absent when S ⊆ T_i, i.e. the branch
// terminates — the paper's double arc).
#pragma once

#include <string>
#include <vector>

#include "tt/instance.hpp"

namespace ttp::tt {

struct TreeNode {
  Mask state = 0;    ///< Candidate set S at this node.
  int action = -1;   ///< Index into Instance::actions().
  int yes = -1;      ///< Test: child for positive outcome. Treatments: -1.
  int no = -1;       ///< Test: negative child. Treatment: failure arc or -1.
};

class Tree {
 public:
  Tree() = default;

  /// Builds the node array; `root` indexes into `nodes`.
  Tree(std::vector<TreeNode> nodes, int root);

  bool empty() const noexcept { return nodes_.empty(); }
  int root() const noexcept { return root_; }
  const std::vector<TreeNode>& nodes() const noexcept { return nodes_; }
  const TreeNode& node(int i) const { return nodes_.at(static_cast<std::size_t>(i)); }
  int size() const noexcept { return static_cast<int>(nodes_.size()); }
  int depth() const;

  /// Expected cost under the instance, from first principles: for each
  /// object, the sum of the costs of all actions encountered on its path,
  /// weighted by P_j. This is the paper's Cost(Tree) definition and is
  /// computed independently of any DP table.
  double expected_cost(const Instance& ins) const;

  /// Cost charged to a single object's path (unweighted); throws if the walk
  /// does not end with the object treated (unsuccessful procedure).
  double path_cost(const Instance& ins, int object) const;

  /// ASCII rendering with action names, one node per line.
  std::string to_string(const Instance& ins) const;

  /// Graphviz DOT rendering: test nodes as boxes with +/- arcs, treatment
  /// nodes as double circles with a dashed failure arc (the paper's single
  /// vs double arc convention).
  std::string to_dot(const Instance& ins) const;

 private:
  std::vector<TreeNode> nodes_;
  int root_ = -1;
};

}  // namespace ttp::tt
