// The paper's parallel TT algorithm (§5-§6) on the word-level hypercube
// machine: one PE per (S, i) pair, address = S‖i (set bits high, action
// index low, N padded to a power of two with INF-cost treatments T = U).
//
// Per layer j = 1..k:
//   copy      R = Q = M                                  (local)
//   e-loop    R[S,i] = R[S∖{e},i]  when e ∈ S∩T_i        (dim a+e)
//             Q[S,i] = Q[S∖{e},i]  when e ∈ S−T_i        (dim a+e)
//   combine   M = R + TP (+ Q for tests), layer-j PEs    (local)
//   min       M[S,i] = min(M[S,i], M[S,i#t]), t < a      (dims 0..a-1)
//
// After layer j the PEs of every |S| = j state all hold C(S) (the ASCEND
// min-reduction leaves the minimum in both halves), which is exactly what
// the next layer's e-loop gathers. steps() on the machine is the paper's
// parallel time; one M-width operand move per step (the bit-serial factor p
// is applied analytically in bench E9/E11 and measured for real by the BVM
// solver).
#pragma once

#include "net/hypercube.hpp"
#include "tt/solver.hpp"

namespace ttp::tt {

/// Per-PE state of the TT microprogram.
struct TtPeState {
  double m = kInf;   ///< M[S,i]
  double r = kInf;   ///< R[S,i]
  double q = kInf;   ///< Q[S,i]
  double tp = kInf;  ///< TP[S,i] = t_i·p(S)
  int best = -1;     ///< argmin index carried by the min-reduction
  // Static per-PE configuration (the BVM loads these through the I-chain;
  // here they are initialized host-side):
  Mask s = 0;        ///< the set S this PE represents
  Mask t = 0;        ///< T_i of this PE's action
  bool is_test = false;
  bool pad = false;  ///< padding action (treatment T=U at INF cost)
  int layer = 0;     ///< #S, the paper's propagation-computed group index
};

class HypercubeSolver {
 public:
  SolveResult solve(const Instance& ins) const;

  /// Exposed for tests/benches: dims of the machine a given instance needs.
  static int machine_dims(const Instance& ins);
  static int action_dims(const Instance& ins);
};

}  // namespace ttp::tt
