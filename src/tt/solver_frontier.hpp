// Reachable-subspace sparse DP solver ("frontier solver").
//
// Every dense solver materializes all 2^k states, but the DP only ever
// consults the closure R of U under S∩T_i / S−T_i — and when N is small
// (the paper's feasibility regime: N = O(k²)) that closure is typically a
// vanishing fraction of the lattice. This solver makes that observation
// executable:
//
//   1. Frontier expansion (top-down): starting from U, each popcount layer
//      is expanded in parallel chunks — workers emit candidate children
//      into disjoint scratch while the dedup StateMap is read-only, then a
//      serial merge inserts the genuinely new states into per-popcount
//      buckets. Children have strictly smaller popcount than their parent,
//      so a single k→1 descent discovers everything. Expansion aborts once
//      a state budget is exceeded (singleton tests can make R = 2^k).
//   2. Layout: buckets are sorted ascending and concatenated popcount-
//      ascending (∅ = slot 0, U = last slot), mirroring LayerIndex order;
//      the StateMap is rebuilt as mask -> slot; p(S) per slot is derived
//      with the same association as subset_weight_table(), bitwise.
//   3. Bottom-up waves: per layer, gather rows (child slots, action-major)
//      are built chunk-by-chunk into per-thread scratch and evaluated by
//      eval_states_sparse (kernel_sparse.hpp). Chunks are deterministic
//      functions of (layer, N); writes are per-state disjoint and reads
//      touch only finalized layers (or the state's own still-kInf slot),
//      so the result is bitwise identical to SequentialSolver on R
//      regardless of the pool width — ties included.
//
// Cost model (normative, see solver.hpp): parallel_steps == total_ops ==
// the number of M-evaluations actually performed == N·(|R|−1) — the
// sequential model restricted to the reachable set. The "m_evaluations"
// and "frontier_states" breakdown counters record the same numbers.
//
// Sparse results leave SolveResult::table EMPTY (no 2^k vectors — that is
// the point); cost/tree/steps/breakdown are fully populated. Callers that
// need per-state tables use solve_sparse(..., FrontierTables*).
//
// The adaptive planner (solve_adaptive) arbitrates dense vs sparse per
// instance: below min_sparse_k the dense arena path wins outright (no hash
// traffic); above it, a budget-capped expansion either completes — sparse
// solve — or hits the cap and falls back dense (k ≤ dense_max_k) or throws
// (k above it; admission should have prevented this). svc::Scheduler feeds
// the same FrontierConfig to admission and to BatchSolver, so an accepted
// k > max_k request is guaranteed a complete closure at solve time.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "tt/kernel.hpp"
#include "tt/kernel_sparse.hpp"
#include "tt/solver.hpp"
#include "util/thread_pool.hpp"

namespace ttp::tt {

/// Conservative closure bytes per reachable state (mask + p(S) + cost +
/// best + StateMap cell at 50% load), used to turn byte budgets into state
/// caps for planning and admission.
inline constexpr std::size_t kSparseBytesPerState = 40;

/// Planner knobs shared by the standalone FrontierSolver, BatchSolver's
/// per-instance dispatch, and svc admission.
struct FrontierConfig {
  /// Hard cap on closure states; 0 derives the cap from max_state_bytes.
  std::size_t max_states = 0;
  /// Byte budget for the closure tables when max_states == 0.
  std::size_t max_state_bytes = std::size_t{64} << 20;
  /// For k ≤ dense_max_k the expansion is additionally capped at
  /// crossover·2^k: past that fraction the dense wave (no hash lookups, no
  /// row builds) is the better kernel, so expansion stops early and the
  /// planner falls back dense.
  double dense_crossover = 0.125;
  /// Below this k the dense path runs unconditionally.
  int min_sparse_k = 15;
  /// Largest k the dense fallback may materialize (2^k tables).
  int dense_max_k = 20;
  bool enable_sparse = true;

  /// The resolved expansion cap for universe size k (≥ 1024 states so tiny
  /// budgets cannot starve trivially-small closures).
  std::size_t state_budget(int k) const;
};

/// Reusable storage for one frontier-solving thread: closure buckets, the
/// mask->slot map, and the slot-indexed tables. Treat as opaque outside
/// tt; contents are only valid between expand_reachable() and the solve
/// that consumes them.
struct FrontierArena {
  StateMap map;
  std::vector<std::vector<Mask>> buckets;  ///< pending states by popcount
  AlignedBuf<Mask> masks;                  ///< layer-contiguous closure
  std::vector<std::size_t> layer_off;      ///< k+2 offsets into masks
  AlignedBuf<double> ws;                   ///< p(S) per slot
  AlignedBuf<double> cost;                 ///< C(S) per slot
  AlignedBuf<int> best;                    ///< argmin per slot
  AlignedBuf<Mask> cand;                   ///< parallel-emit scratch
  AlignedBuf<std::uint32_t> cand_n;        ///< children per scratch row
  std::size_t states = 0;                  ///< |R| incl. ∅ after expansion
  bool complete = false;                   ///< closure finished under budget
};

struct ClosureResult {
  bool complete = false;   ///< false: budget hit, `states` is a lower bound
  std::size_t states = 0;  ///< states discovered (incl. ∅)
};

/// Expands the reachable closure of U, stopping once more than max_states
/// states are discovered. On completion the arena holds the laid-out
/// closure (masks/layer_off/map/ws) ready for the sparse waves; on abort
/// only `states` is meaningful. `pool` parallelizes the per-layer emit
/// phase; nullptr runs serially (the batch-worker mode). Deterministic
/// either way.
ClosureResult expand_reachable(const Instance& ins, std::size_t max_states,
                               FrontierArena& arena,
                               util::ThreadPool* pool = nullptr);

/// Test/bench view of the sparse tables (copies of the arena's storage).
struct FrontierTables {
  std::vector<Mask> masks;
  std::vector<std::size_t> layer_off;
  std::vector<double> cost;
  std::vector<int> best;
};

/// Adaptive solve on caller-owned arenas: dense below min_sparse_k or on
/// budget-capped closures (k ≤ dense_max_k), sparse otherwise. Throws
/// std::runtime_error when the closure exceeds budget AND k > dense_max_k.
/// Single caller per (dense, sparse) arena pair at a time — same aliasing
/// rule as solver_batch.hpp. `span_name` names the root trace span.
SolveResult solve_adaptive(const Instance& ins, SolveArena& dense,
                           FrontierArena& sparse, const FrontierConfig& cfg,
                           util::ThreadPool* pool = nullptr,
                           std::string_view span_name = "solve.frontier");

/// Standalone frontier solver owning its pool and arenas. solve() is the
/// adaptive planner with parallel expansion and waves; solve_sparse()
/// forces the sparse path (throws when the closure exceeds the budget) and
/// can hand the slot tables back for inspection.
///
/// Thread safety: the arenas are shared mutable state, so solve() is
/// single-caller — concurrent calls on one FrontierSolver race (debug
/// builds assert). Distinct instances are independent.
class FrontierSolver {
 public:
  /// `workers` == 0 -> hardware concurrency.
  explicit FrontierSolver(std::size_t workers = 0, FrontierConfig cfg = {});

  SolveResult solve(const Instance& ins) const;
  SolveResult solve_sparse(const Instance& ins,
                           FrontierTables* tables = nullptr) const;

  std::size_t workers() const noexcept { return pool_.size(); }
  const FrontierConfig& config() const noexcept { return cfg_; }

 private:
  mutable util::ThreadPool pool_;
  mutable SolveArena dense_arena_;
  mutable FrontierArena arena_;
  mutable std::atomic<bool> in_solve_{false};  ///< debug re-entrancy guard
  FrontierConfig cfg_;
};

}  // namespace ttp::tt
