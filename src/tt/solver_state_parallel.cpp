#include "tt/solver_state_parallel.hpp"

#include <cmath>

#include "obs/trace.hpp"
#include "tt/kernel.hpp"

namespace ttp::tt {

SolveResult StateParallelSolver::solve(const Instance& ins) const {
  ins.check();
  SolveResult res;
  const int k = ins.k();
  const int N = ins.num_actions();
  const std::vector<double>& wt = ins.subset_weight_table();

  net::HypercubeMachine<StatePeState> m(k);

  // The host-side action loop reads the kernel's SoA layout instead of
  // dispatching through ins.action(i) per (action, dimension) pair.
  ActionSoA soa;
  soa.build(ins);

  TTP_TRACE_SPAN(root_span, "solve.state_parallel", res.steps);
  root_span.attr("k", k);
  root_span.attr("pes", m.size());
  // The simulated per-PE fold shares m_test_value/m_treat_value with the
  // host kernel but never routes through its dispatch; the attr makes that
  // visible next to the host solvers' spans.
  root_span.attr("kernel", "simulated");

  TTP_TRACE_SPAN(init_span, "init", m.steps());
  m.local_step([&](std::size_t pe, StatePeState& st) {
    const Mask s = static_cast<Mask>(pe);
    st.layer = util::popcount(s);
    st.ps = wt[s];
    st.c = s == 0 ? 0.0 : kInf;
    st.best = -1;
  });
  init_span.finish();

  for (int j = 1; j <= k; ++j) {
    TTP_TRACE_SPAN(layer_span, "layer", m.steps());
    layer_span.attr("j", j);
    for (int i = 0; i < N; ++i) {
      const std::size_t ai = static_cast<std::size_t>(i);
      const Mask act_set = soa.set[ai];
      const bool act_is_test = soa.is_test[ai] != 0;
      const double act_cost = soa.cost[ai];
      // R := C, propagated along the dimensions in T_i only: after the
      // sweep R[S] = C(S - T_i) (for e ∉ T_i the identity already holds).
      // Q := C along dims outside T_i: Q[S] = C(S ∩ T_i). Both receivers
      // are the bit-set sides, exactly the paper's e-loop restricted to
      // the dimension subsets this action touches.
      m.local_step([&](std::size_t, StatePeState& st) {
        st.r = st.c;
        st.q = st.c;
      });
      for (int e = 0; e < k; ++e) {
        if (util::has_bit(act_set, e)) {
          m.dim_step(e, [](int, StatePeState& lo, StatePeState& hi) {
            hi.r = lo.r;
          });
        } else if (act_is_test) {
          m.dim_step(e, [](int, StatePeState& lo, StatePeState& hi) {
            hi.q = lo.q;
          });
        }
      }
      // Local fold: C(S) = min(C(S), M[S,i]) on layer-j PEs, through the
      // kernel's single-sourced M-value helpers so the association order
      // stays bitwise identical to every other solver.
      m.local_step([&](std::size_t pe, StatePeState& st) {
        if (st.layer != j) return;
        const Mask s = static_cast<Mask>(pe);
        const Mask inter = s & act_set;
        const Mask minus = s & ~act_set;
        double v;
        if (act_is_test) {
          if (inter == 0 || minus == 0) return;
          v = m_test_value(act_cost, st.ps, st.q, st.r);
        } else {
          if (inter == 0) return;
          v = m_treat_value(act_cost, st.ps, st.r);
        }
        if (v < st.c) {
          st.c = v;
          st.best = i;
        }
      });
    }
  }

  TTP_TRACE_SPAN(extract_span, "extract", m.steps());
  const std::size_t states = std::size_t{1} << k;
  res.table.k = k;
  res.table.cost.assign(states, kInf);
  res.table.best_action.assign(states, -1);
  res.table.cost[0] = 0.0;
  for (std::size_t s = 1; s < states; ++s) {
    const StatePeState& st = m.at(s);
    res.table.cost[s] = st.c;
    res.table.best_action[s] = std::isinf(st.c) ? -1 : st.best;
  }

  res.steps = m.steps();
  res.cost = res.table.root_cost();
  res.tree = reconstruct_tree(ins, res.table);
  res.breakdown.add("pes", m.size());
  return res;
}

}  // namespace ttp::tt
