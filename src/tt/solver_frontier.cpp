#include "tt/solver_frontier.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "util/bits.hpp"

namespace ttp::tt {

namespace {

/// Scratch for the per-chunk gather rows (slot indices, action-major).
/// Thread-local so pool workers and batch workers each reuse their own;
/// capacity is bounded by the chunk budget below, not the instance.
struct RowScratch {
  AlignedBuf<std::uint32_t> inter;
  AlignedBuf<std::uint32_t> minus;
};

RowScratch& row_scratch() {
  static thread_local RowScratch rs;
  return rs;
}

/// States per wave chunk: keeps one chunk's rows (≤ N·chunk·8 bytes for
/// tests' two rows) around a megabyte so they stay cache-resident while
/// the wave gathers through them. Deterministic in N only.
std::size_t wave_chunk(int num_actions) {
  const std::size_t by_bytes =
      (std::size_t{1} << 20) / (8 * std::max(num_actions, 1));
  return std::max<std::size_t>(16, std::min<std::size_t>(4096, by_bytes));
}

/// States per expansion chunk: bounds the candidate scratch (maxkids
/// 4-byte masks per state) to ~8 MiB.
std::size_t expand_chunk(std::size_t maxkids) {
  const std::size_t by_bytes =
      (std::size_t{8} << 20) / (4 * std::max<std::size_t>(maxkids, 1));
  return std::max<std::size_t>(16, std::min<std::size_t>(8192, by_bytes));
}

/// Runs fn(begin, end) over [0, n): pooled when a pool is supplied and the
/// range is worth splitting, inline otherwise. fn must be safe for any
/// partition into contiguous chunks.
void for_ranges(util::ThreadPool* pool, std::size_t n,
                const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (pool != nullptr && n > 1) {
    pool->parallel_for(n, fn);
  } else {
    fn(0, n);
  }
}

/// p(S) with the exact association of subset_weight_table(): the table's
/// recurrence w[lowest] + p(S minus lowest) unrolls to a descending-bit
/// accumulation, so folding bits high -> low reproduces it bitwise without
/// materializing the 2^k table.
double sparse_subset_weight(const std::vector<double>& w, Mask s) {
  double acc = 0.0;
  while (s != 0) {
    const int hb = std::bit_width(s) - 1;
    acc = w[static_cast<std::size_t>(hb)] + acc;
    s &= ~(Mask{1} << hb);
  }
  return acc;
}

/// Rebuilds the arena's layer-contiguous layout + mask->slot map from the
/// expansion buckets. Slot 0 is ∅; layers ascend, masks ascend per layer —
/// LayerIndex order restricted to the closure.
void layout_closure(const Instance& ins, FrontierArena& ar,
                    util::ThreadPool* pool) {
  const int k = ins.k();
  ar.masks.resize_discard(ar.states);
  ar.layer_off.assign(static_cast<std::size_t>(k) + 2, 0);
  Mask* masks = ar.masks.data();
  std::size_t slot = 0;
  masks[slot++] = 0;  // ∅
  for (int j = 1; j <= k; ++j) {
    ar.layer_off[static_cast<std::size_t>(j)] = slot;
    std::vector<Mask>& b = ar.buckets[static_cast<std::size_t>(j)];
    std::sort(b.begin(), b.end());
    for (const Mask m : b) masks[slot++] = m;
  }
  ar.layer_off[static_cast<std::size_t>(k) + 1] = slot;
  assert(slot == ar.states && "closure layout must place every state");

  ar.map.reset(ar.states);
  for (std::size_t s = 0; s < ar.states; ++s) {
    ar.map.insert(masks[s], static_cast<std::uint32_t>(s));
  }

  ar.ws.resize_discard(ar.states);
  double* ws = ar.ws.data();
  const std::vector<double>& w = ins.weights();
  for_ranges(pool, ar.states, [&](std::size_t b, std::size_t e) {
    for (std::size_t s = b; s < e; ++s) {
      ws[s] = sparse_subset_weight(w, masks[s]);
    }
  });
}

/// Sparse tree reconstruction: solver.cpp's recursion with the best-action
/// lookups routed through the mask->slot map.
Tree reconstruct_sparse(const Instance& ins, const FrontierArena& ar) {
  const Mask U = ins.universe();
  const std::uint32_t uslot = ar.map.find(U);
  assert(uslot != StateMap::kNotFound);
  if (std::isinf(ar.cost.data()[uslot])) return Tree{};

  std::vector<TreeNode> nodes;
  std::function<int(Mask)> build = [&](Mask s) -> int {
    const std::uint32_t slot = ar.map.find(s);
    assert(slot != StateMap::kNotFound &&
           "every state the optimal tree visits is reachable by closure");
    const int a = ar.best.data()[slot];
    if (a < 0) {
      throw std::runtime_error("reconstruct_tree: no action for feasible state");
    }
    const Action& act = ins.action(a);
    const int self = static_cast<int>(nodes.size());
    nodes.push_back(TreeNode{s, a, -1, -1});
    if (act.is_test) {
      const Mask inter = s & act.set;
      const Mask minus = s & ~act.set;
      nodes[static_cast<std::size_t>(self)].yes = build(inter);
      nodes[static_cast<std::size_t>(self)].no = build(minus);
    } else {
      const Mask minus = s & ~act.set;
      if (minus != 0) {
        nodes[static_cast<std::size_t>(self)].no = build(minus);
      }
    }
    return self;
  };
  const int root = build(U);
  return Tree(std::move(nodes), root);
}

/// The bottom-up sparse waves over a laid-out closure. Bitwise identical
/// to the dense sweep on the reachable states: chunks are deterministic in
/// (layer, N), every chunk is evaluated by the same kernel regardless of
/// which worker runs it, writes are per-state disjoint, and same-layer
/// reads only ever touch the state's own (still-kInf) slot.
SolveResult solve_on_closure(const Instance& ins, FrontierArena& ar,
                             util::ThreadPool* pool,
                             std::string_view span_name) {
  SolveResult res;
  const int k = ins.k();
  const int N = ins.num_actions();
  const std::size_t nt = static_cast<std::size_t>(ins.num_tests());

  TTP_TRACE_SPAN(root_span, span_name, res.steps);
  root_span.attr("k", k);
  root_span.attr("actions", N);
  root_span.attr("states", static_cast<std::uint64_t>(ar.states));
  root_span.attr("kernel", active_kernel_variant_name());

  static thread_local ActionSoA soa_tls;
  soa_tls.build(ins);
  // Local alias so the chunk lambda captures THIS thread's SoA: thread_local
  // variables are not captured — a worker naming `soa_tls` directly would
  // read its own (empty) instance.
  const ActionSoA& soa = soa_tls;

  ar.cost.resize_discard(ar.states);
  ar.best.resize_discard(ar.states);
  std::fill_n(ar.cost.data(), ar.states, kInf);
  std::fill_n(ar.best.data(), ar.states, -1);
  ar.cost.data()[0] = 0.0;

  const Mask* masks = ar.masks.data();
  double* cost = ar.cost.data();
  int* best = ar.best.data();
  const double* ws = ar.ws.data();
  const std::size_t chunk = wave_chunk(N);

  for (int j = 1; j <= k; ++j) {
    const std::size_t base = ar.layer_off[static_cast<std::size_t>(j)];
    const std::size_t n = ar.layer_off[static_cast<std::size_t>(j) + 1] - base;
    if (n == 0) continue;
    TTP_TRACE_SPAN(layer_span, "frontier.wave", res.steps);
    layer_span.attr("j", j);
    layer_span.attr("states", static_cast<std::uint64_t>(n));
    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    const auto run_chunk = [&](std::size_t c) {
      const std::size_t c0 = base + c * chunk;
      const std::size_t cc = std::min(chunk, base + n - c0);
      RowScratch& rs = row_scratch();
      rs.inter.resize_discard(std::max<std::size_t>(nt, 1) * cc);
      rs.minus.resize_discard(static_cast<std::size_t>(N) * cc);
      std::uint32_t* ir = rs.inter.data();
      std::uint32_t* mr = rs.minus.data();
      // Gather rows: minus slots for every action, inter slots for tests
      // only (treatments never read theirs). A valid split's child is in
      // the closure by construction; invalid splits resolve to slot 0 (∅)
      // or the state's own slot, so find() can never miss here.
      for (std::size_t i = 0; i < static_cast<std::size_t>(N); ++i) {
        const Mask ts = soa.set[i];
        const Mask tn = soa.nset[i];
        std::uint32_t* row_m = mr + i * cc;
        for (std::size_t p = 0; p < cc; ++p) {
          row_m[p] = ar.map.find(masks[c0 + p] & tn);
          assert(row_m[p] != StateMap::kNotFound);
        }
        if (i < nt) {
          std::uint32_t* row_i = ir + i * cc;
          for (std::size_t p = 0; p < cc; ++p) {
            row_i[p] = ar.map.find(masks[c0 + p] & ts);
            assert(row_i[p] != StateMap::kNotFound);
          }
        }
      }
      eval_states_sparse(soa, masks + c0, ws + c0, ir, mr, cc, cc, cost, best,
                         c0);
    };
    for_ranges(pool, num_chunks, [&](std::size_t b, std::size_t e) {
      for (std::size_t c = b; c < e; ++c) run_chunk(c);
    });
    // Sequential cost model restricted to the reachable set: one parallel
    // step per M-evaluation actually performed.
    const std::uint64_t evals =
        static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(N);
    res.steps.charge(evals, evals);
  }

  const std::uint32_t uslot = ar.map.find(ins.universe());
  res.cost = cost[uslot];
  {
    TTP_TRACE_SPAN(tree_span, "frontier.tree");
    res.tree = reconstruct_sparse(ins, ar);
  }
  // Sparse results deliberately leave res.table empty — not materializing
  // the 2^k vectors is the point. cost/tree/steps/breakdown are complete.
  res.breakdown.add("m_evaluations", res.steps.total_ops);
  res.breakdown.add("frontier_states", ar.states);
  TTP_METRIC_ADD("kernel.frontier.solves", 1);
  TTP_METRIC_ADD("kernel.frontier.states", ar.states);
  TTP_METRIC_HIST("kernel.frontier.ratio",
                  (std::uint64_t{1} << k) / std::max<std::size_t>(ar.states, 1));
  return res;
}

}  // namespace

std::size_t FrontierConfig::state_budget(int k) const {
  std::size_t cap = max_states != 0
                        ? max_states
                        : std::max<std::size_t>(
                              1024, max_state_bytes / kSparseBytesPerState);
  if (k <= dense_max_k) {
    const double cross =
        dense_crossover * static_cast<double>(std::uint64_t{1} << k);
    cap = std::min(cap, std::max<std::size_t>(
                            1024, static_cast<std::size_t>(cross)));
  }
  return cap;
}

ClosureResult expand_reachable(const Instance& ins, std::size_t max_states,
                               FrontierArena& arena, util::ThreadPool* pool) {
  const int k = ins.k();
  const int N = ins.num_actions();
  const std::size_t nt = static_cast<std::size_t>(ins.num_tests());
  const Mask U = ins.universe();

  arena.complete = false;
  arena.buckets.assign(static_cast<std::size_t>(k) + 1, {});
  arena.map.reset(std::min<std::size_t>(max_states, 4096));
  arena.map.insert(U, 0);
  arena.buckets[static_cast<std::size_t>(k)].push_back(U);
  std::size_t total = 2;  // ∅ and U (∅ joins the map at layout time)

  static thread_local ActionSoA soa_tls;
  soa_tls.build(ins);
  // Local alias so the emit lambda captures THIS thread's SoA (thread_local
  // variables are never captured; workers would see their own empty one).
  const ActionSoA& soa = soa_tls;
  // Emit capacity per state: two children per test, one per treatment.
  const std::size_t maxkids = 2 * nt + (static_cast<std::size_t>(N) - nt);
  const std::size_t chunk = expand_chunk(maxkids);
  arena.cand.resize_discard(chunk * std::max<std::size_t>(maxkids, 1));
  arena.cand_n.resize_discard(chunk);
  Mask* cand = arena.cand.data();
  std::uint32_t* cand_n = arena.cand_n.data();

  // Top-down: children have strictly smaller popcount, so one k -> 2
  // descent discovers the whole closure (layer-1 states only spawn ∅).
  for (int j = k; j >= 2; --j) {
    const std::vector<Mask>& layer = arena.buckets[static_cast<std::size_t>(j)];
    for (std::size_t off = 0; off < layer.size(); off += chunk) {
      const std::size_t cc = std::min(chunk, layer.size() - off);
      // Parallel emit: the dedup map is read-only here; each state writes
      // its own candidate row, so workers never touch shared state.
      for_ranges(pool, cc, [&](std::size_t b, std::size_t e) {
        for (std::size_t p = b; p < e; ++p) {
          const Mask s = layer[off + p];
          Mask* row = cand + p * maxkids;
          std::uint32_t cnt = 0;
          for (std::size_t i = 0; i < static_cast<std::size_t>(N); ++i) {
            const Mask im = s & soa.set[i];
            const Mask mm = s & soa.nset[i];
            if (i < nt) {
              if (im == 0 || mm == 0) continue;  // test does not split S
              if (arena.map.find(im) == StateMap::kNotFound) row[cnt++] = im;
              if (arena.map.find(mm) == StateMap::kNotFound) row[cnt++] = mm;
            } else {
              if (im == 0 || mm == 0) continue;  // inapplicable or final
              if (arena.map.find(mm) == StateMap::kNotFound) row[cnt++] = mm;
            }
          }
          cand_n[p] = cnt;
        }
      });
      // Serial merge: deterministic insertion order, budget enforcement.
      for (std::size_t p = 0; p < cc; ++p) {
        const Mask* row = cand + p * maxkids;
        const std::uint32_t cnt = cand_n[p];
        for (std::uint32_t c = 0; c < cnt; ++c) {
          if (!arena.map.insert(row[c], 0)) continue;
          arena.buckets[static_cast<std::size_t>(util::popcount(row[c]))]
              .push_back(row[c]);
          if (++total > max_states) {
            arena.states = total;
            return ClosureResult{false, total};
          }
        }
      }
    }
  }
  arena.states = total;
  arena.complete = true;
  layout_closure(ins, arena, pool);
  return ClosureResult{true, total};
}

SolveResult solve_adaptive(const Instance& ins, SolveArena& dense,
                           FrontierArena& sparse, const FrontierConfig& cfg,
                           util::ThreadPool* pool, std::string_view span_name) {
  ins.check();
  const int k = ins.k();
  // Above the dense ceiling sparse is the only option, min_sparse_k
  // notwithstanding — admission let the instance in on the strength of a
  // closure probe, not a dense table.
  const bool must_sparse = k > cfg.dense_max_k;
  if (!cfg.enable_sparse || (!must_sparse && k < cfg.min_sparse_k)) {
    if (must_sparse) {
      throw std::runtime_error(
          "frontier: sparse path disabled and k=" + std::to_string(k) +
          " exceeds the dense ceiling " + std::to_string(cfg.dense_max_k));
    }
    return solve_with_arena(ins, dense, span_name);
  }
  ClosureResult cr;
  {
    TTP_TRACE_SPAN(span, "frontier.closure");
    cr = expand_reachable(ins, cfg.state_budget(k), sparse, pool);
    span.attr("states", static_cast<std::uint64_t>(cr.states));
    span.attr("complete", cr.complete ? 1 : 0);
  }
  if (!cr.complete) {
    TTP_METRIC_ADD("kernel.frontier.fallback", 1);
    if (k > cfg.dense_max_k) {
      throw std::runtime_error(
          "frontier: reachable closure exceeds the sparse budget (" +
          std::to_string(cr.states) + "+ states) and k=" + std::to_string(k) +
          " exceeds the dense ceiling " + std::to_string(cfg.dense_max_k));
    }
    SolveResult res = solve_with_arena(ins, dense, span_name);
    res.breakdown.add("frontier_fallback", 1);
    return res;
  }
  return solve_on_closure(ins, sparse, pool, span_name);
}

FrontierSolver::FrontierSolver(std::size_t workers, FrontierConfig cfg)
    : pool_(workers), cfg_(cfg) {}

namespace {

/// Debug-only re-entrancy guard (see the class comment): two concurrent
/// solve() calls on one FrontierSolver race on the shared arenas.
class [[maybe_unused]] SolveGuard {
 public:
  explicit SolveGuard(std::atomic<bool>& flag) : flag_(flag) {
#ifndef NDEBUG
    const bool was = flag_.exchange(true, std::memory_order_acq_rel);
    assert(!was &&
           "FrontierSolver::solve is single-caller: concurrent calls race "
           "on the shared arenas");
#endif
  }
  ~SolveGuard() {
#ifndef NDEBUG
    flag_.store(false, std::memory_order_release);
#endif
  }

 private:
  [[maybe_unused]] std::atomic<bool>& flag_;
};

}  // namespace

SolveResult FrontierSolver::solve(const Instance& ins) const {
  const SolveGuard guard(in_solve_);
  return solve_adaptive(ins, dense_arena_, arena_, cfg_, &pool_,
                        "solve.frontier");
}

SolveResult FrontierSolver::solve_sparse(const Instance& ins,
                                         FrontierTables* tables) const {
  const SolveGuard guard(in_solve_);
  ins.check();
  const int k = ins.k();
  // Forced-sparse budget: cfg_.max_states when pinned, otherwise the full
  // lattice (expansion is bounded by 2^k, so it always completes).
  const std::size_t budget = cfg_.max_states != 0
                                 ? cfg_.max_states
                                 : (std::size_t{1} << k) + 1;
  ClosureResult cr;
  {
    TTP_TRACE_SPAN(span, "frontier.closure");
    cr = expand_reachable(ins, budget, arena_, &pool_);
    span.attr("states", static_cast<std::uint64_t>(cr.states));
  }
  if (!cr.complete) {
    throw std::runtime_error(
        "FrontierSolver::solve_sparse: closure exceeds max_states=" +
        std::to_string(budget));
  }
  SolveResult res = solve_on_closure(ins, arena_, &pool_, "solve.frontier");
  if (tables != nullptr) {
    tables->masks.assign(arena_.masks.data(),
                         arena_.masks.data() + arena_.states);
    tables->layer_off = arena_.layer_off;
    tables->cost.assign(arena_.cost.data(),
                        arena_.cost.data() + arena_.states);
    tables->best.assign(arena_.best.data(),
                        arena_.best.data() + arena_.states);
  }
  return res;
}

}  // namespace ttp::tt
