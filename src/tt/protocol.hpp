// Renders a solved TT procedure as a numbered, human-followable protocol —
// the artifact a clinic, repair desk or lab would actually pin on the wall.
// Each step names the action, its cost, and where each outcome leads.
#pragma once

#include <string>

#include "tt/solver.hpp"

namespace ttp::tt {

struct ProtocolOptions {
  bool include_candidates = true;  ///< show the candidate set per step
  bool include_costs = true;
  /// Names for the objects (size k); defaults to "object 0", "object 1"...
  std::vector<std::string> object_names;
};

/// Markdown-ish numbered protocol. Steps are breadth-first so the common
/// path comes first; every branch target is a step number.
std::string render_protocol(const Instance& ins, const Tree& tree,
                            const ProtocolOptions& opt = {});

}  // namespace ttp::tt
