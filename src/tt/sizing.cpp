#include "tt/sizing.hpp"

#include "tt/solver_frontier.hpp"
#include "util/bits.hpp"

namespace ttp::tt {

SizingRow size_for(int k, std::uint64_t num_actions) {
  SizingRow row;
  row.k = k;
  row.num_actions = num_actions;
  const int a = util::ceil_log2(num_actions < 2 ? 2 : num_actions);
  row.machine_dims = k + a;
  // Feasibility sweeps go far past any machine; saturate rather than shift
  // out of the 64-bit range (the dims column stays exact).
  row.pes = row.machine_dims >= 64 ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << row.machine_dims);
  row.fits_2_20 = row.machine_dims <= 20;
  row.fits_2_30 = row.machine_dims <= 30;
  return row;
}

std::uint64_t actions_for(int k, ActionBudget policy) {
  switch (policy) {
    case ActionBudget::kAllSubsets:
      // The paper's "all possible tests and treatments" regime, N = O(2^k):
      // 2^k actions, so the machine needs N·2^k = 2^(2k) PEs.
      return std::uint64_t{1} << k;
    case ActionBudget::kQuadratic:
      return static_cast<std::uint64_t>(k) * static_cast<std::uint64_t>(k);
    case ActionBudget::kLinear:
      return static_cast<std::uint64_t>(4 * k);
  }
  return 0;
}

int max_k_for_machine(int budget_log2, ActionBudget policy) {
  int best = 0;
  for (int k = 1; k <= 40; ++k) {
    const SizingRow row = size_for(k, actions_for(k, policy));
    if (row.machine_dims <= budget_log2) best = k;
  }
  return best;
}

ReachableEstimate estimate_reachable(const Instance& ins,
                                     std::uint64_t max_states) {
  // Function-local arena: estimation happens on admission paths that may
  // run concurrently across sessions, and oversize-k probes are rare
  // enough that the allocation cost does not matter.
  FrontierArena arena;
  const ClosureResult cr = expand_reachable(
      ins, static_cast<std::size_t>(max_states), arena, /*pool=*/nullptr);
  return ReachableEstimate{static_cast<std::uint64_t>(cr.states), cr.complete};
}

std::string budget_name(ActionBudget policy) {
  switch (policy) {
    case ActionBudget::kAllSubsets:
      return "N=O(2^k)";
    case ActionBudget::kQuadratic:
      return "N=k^2";
    case ActionBudget::kLinear:
      return "N=4k";
  }
  return "?";
}

}  // namespace ttp::tt
