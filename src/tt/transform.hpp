// Instance transformations — the algebra behind the DP's invariance
// properties (cost/weight linearity, relabeling isomorphism) and the
// practical tooling for what-if analyses (restriction to a sub-universe,
// action filtering, cost inflation of an action class).
#pragma once

#include <functional>
#include <vector>

#include "tt/instance.hpp"

namespace ttp::tt {

/// Every action cost multiplied by c > 0 (scales C(S) by c).
Instance scale_costs(const Instance& ins, double c);

/// Every prior multiplied by w > 0 (scales C(S) by w).
Instance scale_weights(const Instance& ins, double w);

/// Objects relabeled by `perm` (perm[old] = new); C is permuted, C(U)
/// unchanged. perm must be a permutation of 0..k-1.
Instance permute_objects(const Instance& ins, const std::vector<int>& perm);

/// The sub-problem induced by candidate set `s`: objects of `s` renumbered
/// densely, each action's set intersected with `s` (empty-intersection
/// treatments and non-splitting tests are kept — the DP ignores them).
/// C_restricted(full set) equals C_original(s) — the DP's sub-problem.
Instance restrict_to(const Instance& ins, Mask s);

/// Keeps only the actions for which `keep(index, action)` returns true
/// (order preserved; C can only increase).
Instance filter_actions(
    const Instance& ins,
    const std::function<bool(int, const Action&)>& keep);

/// Multiplies the cost of every TEST by c (e.g. "what if probing got
/// dearer") — treatments untouched; `scale_treatment_costs` is the mirror.
Instance scale_test_costs(const Instance& ins, double c);
Instance scale_treatment_costs(const Instance& ins, double c);

}  // namespace ttp::tt
