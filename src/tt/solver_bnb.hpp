// Top-down branch-and-bound solver.
//
// The layered DP (and the paper's parallel machine) evaluates all 2^k
// states. A top-down recursion only ever touches states REACHABLE from U
// under the instance's action set — often far fewer for structured
// instances (bisection probes, hierarchical keys) — and prunes with an
// admissible lower bound:
//
//   LB(S) = Σ_{j∈S} P_j · (cost of the cheapest treatment covering j)
//
// (every object's path ends with a treatment containing it). Within a
// state, actions are tried most-promising-first and a child recursion is
// skipped when the accumulated cost plus the sibling's bound already
// reaches the best known value. Results are exact and identical to
// SequentialSolver on the visited states.
#pragma once

#include <unordered_map>

#include "tt/solver.hpp"

namespace ttp::tt {

class BnbSolver {
 public:
  /// Solves `ins`. The result's table is sparse in spirit: unvisited
  /// states keep C = kInf / action -1, but cost/tree/best_action along all
  /// reachable optimal paths match SequentialSolver exactly.
  /// breakdown: "visited_states" (memo size), "pruned_actions".
  SolveResult solve(const Instance& ins) const;

  /// Number of states reachable from U (no pruning) — the solver's search
  /// space upper bound; exposed for tests and benches.
  static std::size_t count_reachable(const Instance& ins);
};

}  // namespace ttp::tt
