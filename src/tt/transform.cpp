#include "tt/transform.hpp"

#include <stdexcept>

namespace ttp::tt {

namespace {

Instance rebuild(const Instance& ins,
                 const std::function<double(const Action&)>& cost_of,
                 const std::function<Mask(Mask)>& set_of,
                 std::vector<double> weights,
                 const std::function<bool(int, const Action&)>& keep) {
  // Take the size before the move: argument evaluation order is
  // unspecified, and std::move(weights) may be consumed first.
  const int k = static_cast<int>(weights.size());
  Instance out(k, std::move(weights));
  for (int i = 0; i < ins.num_actions(); ++i) {
    const Action& a = ins.action(i);
    if (!keep(i, a)) continue;
    if (a.is_test) {
      out.add_test(set_of(a.set), cost_of(a), a.name);
    } else {
      out.add_treatment(set_of(a.set), cost_of(a), a.name);
    }
  }
  out.check();
  return out;
}

const auto kKeepAll = [](int, const Action&) { return true; };

}  // namespace

Instance scale_costs(const Instance& ins, double c) {
  if (!(c > 0)) throw std::invalid_argument("scale_costs: c must be > 0");
  return rebuild(
      ins, [c](const Action& a) { return a.cost * c; },
      [](Mask s) { return s; }, ins.weights(), kKeepAll);
}

Instance scale_weights(const Instance& ins, double w) {
  if (!(w > 0)) throw std::invalid_argument("scale_weights: w must be > 0");
  std::vector<double> weights = ins.weights();
  for (double& x : weights) x *= w;
  return rebuild(
      ins, [](const Action& a) { return a.cost; }, [](Mask s) { return s; },
      std::move(weights), kKeepAll);
}

Instance permute_objects(const Instance& ins, const std::vector<int>& perm) {
  const int k = ins.k();
  if (static_cast<int>(perm.size()) != k) {
    throw std::invalid_argument("permute_objects: perm size != k");
  }
  std::vector<char> seen(static_cast<std::size_t>(k), 0);
  for (int p : perm) {
    if (p < 0 || p >= k || seen[static_cast<std::size_t>(p)]) {
      throw std::invalid_argument("permute_objects: not a permutation");
    }
    seen[static_cast<std::size_t>(p)] = 1;
  }
  std::vector<double> weights(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    weights[static_cast<std::size_t>(perm[static_cast<std::size_t>(j)])] =
        ins.weight(j);
  }
  auto map_mask = [&](Mask m) {
    Mask out = 0;
    for (int j = 0; j < k; ++j) {
      if (util::has_bit(m, j)) {
        out |= util::bit(perm[static_cast<std::size_t>(j)]);
      }
    }
    return out;
  };
  return rebuild(
      ins, [](const Action& a) { return a.cost; }, map_mask,
      std::move(weights), kKeepAll);
}

Instance restrict_to(const Instance& ins, Mask s) {
  if (s == 0 || (s & ~ins.universe()) != 0) {
    throw std::invalid_argument("restrict_to: bad candidate set");
  }
  // Dense renumbering of the surviving objects.
  std::vector<int> dense(static_cast<std::size_t>(ins.k()), -1);
  std::vector<double> weights;
  int next = 0;
  for (int j = 0; j < ins.k(); ++j) {
    if (util::has_bit(s, j)) {
      dense[static_cast<std::size_t>(j)] = next++;
      weights.push_back(ins.weight(j));
    }
  }
  auto map_mask = [&](Mask m) {
    Mask out = 0;
    for (int j = 0; j < ins.k(); ++j) {
      if (util::has_bit(m & s, j)) {
        out |= util::bit(dense[static_cast<std::size_t>(j)]);
      }
    }
    return out;
  };
  return rebuild(
      ins, [](const Action& a) { return a.cost; }, map_mask,
      std::move(weights), kKeepAll);
}

Instance filter_actions(
    const Instance& ins,
    const std::function<bool(int, const Action&)>& keep) {
  return rebuild(
      ins, [](const Action& a) { return a.cost; }, [](Mask s) { return s; },
      ins.weights(), keep);
}

Instance scale_test_costs(const Instance& ins, double c) {
  if (!(c > 0)) throw std::invalid_argument("scale_test_costs: c > 0");
  return rebuild(
      ins,
      [c](const Action& a) { return a.is_test ? a.cost * c : a.cost; },
      [](Mask s) { return s; }, ins.weights(), kKeepAll);
}

Instance scale_treatment_costs(const Instance& ins, double c) {
  if (!(c > 0)) throw std::invalid_argument("scale_treatment_costs: c > 0");
  return rebuild(
      ins,
      [c](const Action& a) { return a.is_test ? a.cost : a.cost * c; },
      [](Mask s) { return s; }, ins.weights(), kKeepAll);
}

}  // namespace ttp::tt
