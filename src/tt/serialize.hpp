// Plain-text serialization of TT instances, for tooling and data exchange:
//
//   # medical example
//   tt 4
//   weights 0.4 0.3 0.2 0.1
//   test  testAB {0,1}   1.0
//   test  testAC {0,2}   1.5
//   treat cureA  {0}     2.0
//
// Order of actions is preserved within each kind; '#' starts a comment.
#pragma once

#include <iosfwd>
#include <string>

#include "tt/instance.hpp"

namespace ttp::tt {

/// Writes the canonical text form.
std::string to_text(const Instance& ins);
void write_text(std::ostream& os, const Instance& ins);

/// Parses the text form; throws std::invalid_argument with a line-numbered
/// message on malformed input.
Instance from_text(const std::string& text);
Instance read_text(std::istream& is);

/// File helpers (throw std::runtime_error on I/O failure).
void save_file(const std::string& path, const Instance& ins);
Instance load_file(const std::string& path);

}  // namespace ttp::tt
