// Plain-text serialization of TT instances, for tooling and data exchange:
//
//   # medical example
//   tt 4
//   weights 0.4 0.3 0.2 0.1
//   test  testAB {0,1}   1.0
//   test  testAC {0,2}   1.5
//   treat cureA  {0}     2.0
//
// Order of actions is preserved within each kind; '#' starts a comment.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "tt/instance.hpp"
#include "tt/tree.hpp"

namespace ttp::tt {

/// Writes the plain text form, actions in insertion order (order matters to
/// solvers — ties break toward the lowest action index — so the default
/// serialization never reorders).
std::string to_text(const Instance& ins);
void write_text(std::ostream& os, const Instance& ins);

/// The canonical action order used by the serving layer (svc/canon) to make
/// semantically identical instances collide: tests before treatments, each
/// group stably sorted by (set, cost). Returns a permutation `ord` with
/// `ord[i]` = the original index of the i-th canonical action; duplicate
/// (set, cost) actions keep their relative order, so the permutation is
/// deterministic.
std::vector<int> canonical_action_order(const Instance& ins);

/// Text form with actions emitted in canonical_action_order. Parsing it
/// yields the canonically ordered instance (names preserved); svc/canon
/// additionally normalizes weights and regenerates names before hashing.
std::string to_canonical_text(const Instance& ins);
void write_canonical_text(std::ostream& os, const Instance& ins);

/// Parses the text form; throws std::invalid_argument with a line-numbered
/// message on malformed input.
Instance from_text(const std::string& text);
Instance read_text(std::istream& is);

/// File helpers (throw std::runtime_error on I/O failure).
void save_file(const std::string& path, const Instance& ins);
Instance load_file(const std::string& path);

// ---------------------------------------------------------------------------
// Compact binary codecs (the durable procedure store's record payloads,
// src/store/format.hpp). Layout: LEB128 varints for counts and masks,
// zigzag varints for signed tree indices, doubles as their raw IEEE-754
// bits little-endian — so a decode→re-encode round trip is byte-identical
// and decode→to_text reproduces the exact source text (doubles never pass
// through a decimal conversion).
//
// Decoders are hardened for untrusted bytes: every read is bounds-checked
// against the input span (never past-the-end, no matter how the length
// fields lie), counts are capped (kMaxBinaryNodes / kMaxBinaryActions /
// kMaxBinaryNameBytes) before any allocation, and tree arcs / action
// indices / set bits are range-checked. Malformed input throws
// std::invalid_argument; it never crashes or reads out of bounds
// (tests/test_serialize_binary.cpp fuzzes truncations and bit flips under
// the sanitizer jobs).

/// Decode-side allocation caps; encodes above them are rejected too, so the
/// codec stays symmetric.
inline constexpr std::uint64_t kMaxBinaryNodes = std::uint64_t{1} << 26;
inline constexpr std::uint64_t kMaxBinaryActions = std::uint64_t{1} << 20;
inline constexpr std::uint64_t kMaxBinaryNameBytes = std::uint64_t{1} << 16;

/// Appends the binary form of `tree` to `out`.
void encode_tree_binary(const Tree& tree, std::string& out);

/// Parses encode_tree_binary output; throws std::invalid_argument on
/// malformed input (truncation, arc indices outside the node array, counts
/// past the caps). Requires the whole span to be consumed.
Tree decode_tree_binary(std::string_view bytes);

/// Appends the binary form of `ins` (weights, actions with names, insertion
/// order preserved) to `out`.
void encode_instance_binary(const Instance& ins, std::string& out);

/// Parses encode_instance_binary output; throws std::invalid_argument on
/// malformed input. The result satisfies Instance::check() and
/// to_text(decode(encode(ins))) == to_text(ins) byte-for-byte.
Instance decode_instance_binary(std::string_view bytes);

}  // namespace ttp::tt
