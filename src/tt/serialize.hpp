// Plain-text serialization of TT instances, for tooling and data exchange:
//
//   # medical example
//   tt 4
//   weights 0.4 0.3 0.2 0.1
//   test  testAB {0,1}   1.0
//   test  testAC {0,2}   1.5
//   treat cureA  {0}     2.0
//
// Order of actions is preserved within each kind; '#' starts a comment.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tt/instance.hpp"

namespace ttp::tt {

/// Writes the plain text form, actions in insertion order (order matters to
/// solvers — ties break toward the lowest action index — so the default
/// serialization never reorders).
std::string to_text(const Instance& ins);
void write_text(std::ostream& os, const Instance& ins);

/// The canonical action order used by the serving layer (svc/canon) to make
/// semantically identical instances collide: tests before treatments, each
/// group stably sorted by (set, cost). Returns a permutation `ord` with
/// `ord[i]` = the original index of the i-th canonical action; duplicate
/// (set, cost) actions keep their relative order, so the permutation is
/// deterministic.
std::vector<int> canonical_action_order(const Instance& ins);

/// Text form with actions emitted in canonical_action_order. Parsing it
/// yields the canonically ordered instance (names preserved); svc/canon
/// additionally normalizes weights and regenerates names before hashing.
std::string to_canonical_text(const Instance& ins);
void write_canonical_text(std::ostream& os, const Instance& ins);

/// Parses the text form; throws std::invalid_argument with a line-numbered
/// message on malformed input.
Instance from_text(const std::string& text);
Instance read_text(std::istream& is);

/// File helpers (throw std::runtime_error on I/O failure).
void save_file(const std::string& path, const Instance& ins);
Instance load_file(const std::string& path);

}  // namespace ttp::tt
