#include "tt/validate.hpp"

#include <cmath>

#include "tt/solver_sequential.hpp"

namespace ttp::tt {

namespace {

void check_node(const Instance& ins, const Tree& tree, int idx, Mask expect,
                ValidationReport& rep) {
  const TreeNode& t = tree.node(idx);
  if (t.state != expect) {
    rep.fail("node " + std::to_string(idx) + ": state " +
             util::mask_to_string(t.state) + " != expected " +
             util::mask_to_string(expect));
    return;
  }
  if (t.action < 0 || t.action >= ins.num_actions()) {
    rep.fail("node " + std::to_string(idx) + ": bad action index");
    return;
  }
  const Action& a = ins.action(t.action);
  const Mask inter = t.state & a.set;
  const Mask minus = t.state & ~a.set;
  if (a.is_test) {
    if (inter == 0 || minus == 0) {
      rep.fail("node " + std::to_string(idx) + ": test does not split");
      return;
    }
    if (t.yes < 0 || t.no < 0) {
      rep.fail("node " + std::to_string(idx) + ": test missing a child");
      return;
    }
    check_node(ins, tree, t.yes, inter, rep);
    check_node(ins, tree, t.no, minus, rep);
  } else {
    if (inter == 0) {
      rep.fail("node " + std::to_string(idx) + ": treatment treats nobody");
      return;
    }
    if (t.yes >= 0) {
      rep.fail("node " + std::to_string(idx) + ": treatment has a yes-child");
      return;
    }
    if (minus == 0) {
      if (t.no >= 0) {
        rep.fail("node " + std::to_string(idx) +
                 ": terminal treatment has a continuation");
      }
    } else {
      if (t.no < 0) {
        rep.fail("node " + std::to_string(idx) +
                 ": failed treatment lacks a continuation");
        return;
      }
      check_node(ins, tree, t.no, minus, rep);
    }
  }
}

}  // namespace

ValidationReport validate_tree(const Instance& ins, const Tree& tree,
                               double expected_cost, double tol) {
  ValidationReport rep;
  if (tree.empty()) {
    rep.fail("empty tree");
    return rep;
  }
  check_node(ins, tree, tree.root(), ins.universe(), rep);
  if (!rep.ok) return rep;

  for (int j = 0; j < ins.k(); ++j) {
    try {
      (void)tree.path_cost(ins, j);
    } catch (const std::exception& e) {
      rep.fail("object " + std::to_string(j) + ": " + e.what());
    }
  }
  if (!rep.ok) return rep;

  const double actual = tree.expected_cost(ins);
  if (std::fabs(actual - expected_cost) > tol) {
    rep.fail("expected cost " + std::to_string(expected_cost) +
             " but tree costs " + std::to_string(actual));
  }
  return rep;
}

ValidationReport validate_table(const Instance& ins, const DpTable& table,
                                double tol) {
  ValidationReport rep;
  const std::size_t states = std::size_t{1} << ins.k();
  if (table.cost.size() != states || table.best_action.size() != states) {
    rep.fail("table size mismatch");
    return rep;
  }
  if (table.cost[0] != 0.0) rep.fail("C(empty) != 0");

  const std::vector<double>& wt = ins.subset_weight_table();
  for (std::size_t s = 1; s < states; ++s) {
    const Mask m = static_cast<Mask>(s);
    double best = kInf;
    int arg = -1;
    for (int i = 0; i < ins.num_actions(); ++i) {
      const double v = action_value(ins, table.cost, wt, m, i);
      if (v < best) {
        best = v;
        arg = i;
      }
    }
    const double have = table.cost[s];
    if (std::isinf(best) != std::isinf(have) ||
        (!std::isinf(best) && std::fabs(best - have) > tol)) {
      rep.fail("state " + util::mask_to_string(m) + ": recurrence gives " +
               std::to_string(best) + " table has " + std::to_string(have));
    }
    if (arg != table.best_action[s] && !std::isinf(best)) {
      // Accept any argmin that achieves the cost (solvers promise the lowest
      // index; the recurrence check above already pins the value).
      const double v =
          table.best_action[s] < 0
              ? kInf
              : action_value(ins, table.cost, wt, m, table.best_action[s]);
      if (std::isinf(v) || std::fabs(v - have) > tol) {
        rep.fail("state " + util::mask_to_string(m) +
                 ": best_action does not achieve the cost");
      }
    }
  }
  return rep;
}

}  // namespace ttp::tt
