// The processor-time tradeoff the paper's §1 hints at: "Our algorithm was
// designed to optimize performance for relatively few tests and
// treatments, e.g. N = O(k^b) ... Other approaches are reasonable if
// N = O(2^k) is commonly used."
//
// This solver uses ONE PE PER STATE (2^k PEs instead of N·2^k) and loops
// over the actions at the host: per layer, for each action i, the subset
// broadcast runs only along the dimensions inside T_i (for R) or outside
// (for Q) — every dimension exactly once per action — and the minimization
// is a LOCAL update (no reduction dimensions at all, since each PE sees
// every action in turn). Parallel time grows from O(k(k + log N)) to
// O(N·k·k) while the PE count shrinks by the factor N: a Brent-style
// rebalancing that wins exactly when N is large relative to the PE budget.
// Bench E20 measures the tradeoff against the (S, i)-parallel solver.
#pragma once

#include "net/hypercube.hpp"
#include "tt/solver.hpp"

namespace ttp::tt {

struct StatePeState {
  double c = kInf;   ///< C(S) (being accumulated as min over actions)
  double next = kInf;  ///< M[S,i] scratch for the current action
  double r = kInf;
  double q = kInf;
  double ps = 0.0;   ///< p(S)
  int best = -1;
  int layer = 0;
};

class StateParallelSolver {
 public:
  /// Solves on a 2^k-PE hypercube machine, actions serialized at the host.
  SolveResult solve(const Instance& ins) const;
};

}  // namespace ttp::tt
