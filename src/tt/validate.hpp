// Structural and semantic validation of TT procedures and DP tables.
#pragma once

#include <string>
#include <vector>

#include "tt/solver.hpp"

namespace ttp::tt {

struct ValidationReport {
  bool ok = true;
  std::vector<std::string> errors;

  void fail(std::string msg) {
    ok = false;
    errors.push_back(std::move(msg));
  }
};

/// Checks that `tree` is a well-formed *successful* procedure for `ins`:
/// states are consistent along arcs (yes-child state == S∩T_i etc.), tests
/// genuinely split, treatments treat someone, every object's walk terminates
/// treated, and the tree's expected cost equals `expected_cost` (exact
/// comparison when tol == 0).
ValidationReport validate_tree(const Instance& ins, const Tree& tree,
                               double expected_cost, double tol = 1e-9);

/// Checks internal consistency of a DP table: C(∅)=0, monotone under the
/// recurrence (recomputing each layer from the table reproduces the table),
/// best_action achieves the stated cost, and every singleton's cost matches
/// the cheapest covering treatment.
ValidationReport validate_table(const Instance& ins, const DpTable& table,
                                double tol = 1e-9);

}  // namespace ttp::tt
