#include "tt/instance.hpp"

#include <stdexcept>

namespace ttp::tt {

Instance::Instance(int k, std::vector<double> weights)
    : k_(k), weights_(std::move(weights)) {
  if (k < 1 || k > kMaxUniverse) {
    throw std::invalid_argument("Instance: k out of range [1, 24]");
  }
  if (static_cast<int>(weights_.size()) != k) {
    throw std::invalid_argument("Instance: weights size != k");
  }
}

int Instance::add_test(Mask set, double cost, std::string name) {
  Action a{set, cost, /*is_test=*/true,
           name.empty() ? "test" + std::to_string(num_tests_) : std::move(name)};
  actions_.insert(actions_.begin() + num_tests_, std::move(a));
  weight_table_.clear();
  return num_tests_++;
}

int Instance::add_treatment(Mask set, double cost, std::string name) {
  Action a{set, cost, /*is_test=*/false,
           name.empty() ? "treat" + std::to_string(num_actions() - num_tests_)
                        : std::move(name)};
  actions_.push_back(std::move(a));
  return num_actions() - 1;
}

double Instance::subset_weight(Mask s) const {
  double w = 0.0;
  for (int j = 0; j < k_; ++j) {
    if (util::has_bit(s, j)) w += weights_[static_cast<std::size_t>(j)];
  }
  return w;
}

const std::vector<double>& Instance::subset_weight_table() const {
  if (weight_table_.empty()) {
    const std::size_t n = std::size_t{1} << k_;
    weight_table_.resize(n, 0.0);
    // p(S) = p(S without lowest bit) + P_lowest, the same association as
    // subset_weight's ascending loop.
    for (std::size_t s = 1; s < n; ++s) {
      const Mask m = static_cast<Mask>(s);
      const int low = std::countr_zero(m);
      weight_table_[s] =
          weights_[static_cast<std::size_t>(low)] + weight_table_[s & (s - 1)];
    }
  }
  return weight_table_;
}

void Instance::check() const {
  for (int j = 0; j < k_; ++j) {
    if (!(weights_[static_cast<std::size_t>(j)] > 0.0)) {
      throw std::invalid_argument("Instance: weights must be positive");
    }
  }
  for (const auto& a : actions_) {
    if ((a.set & ~universe()) != 0) {
      throw std::invalid_argument("Instance: action set outside universe");
    }
    if (a.cost < 0.0) {
      throw std::invalid_argument("Instance: negative action cost");
    }
  }
  for (int i = 0; i + 1 < num_actions(); ++i) {
    if (!actions_[static_cast<std::size_t>(i)].is_test &&
        actions_[static_cast<std::size_t>(i + 1)].is_test) {
      throw std::invalid_argument("Instance: tests must precede treatments");
    }
  }
}

bool Instance::every_object_treatable() const {
  Mask covered = 0;
  for (int i = num_tests_; i < num_actions(); ++i) {
    covered |= actions_[static_cast<std::size_t>(i)].set;
  }
  return covered == universe();
}

Instance fig1_example() {
  // Four candidate conditions with unequal priors; two symptom tests that
  // split the candidates, three treatments of differing breadth and price.
  Instance ins(4, {0.4, 0.3, 0.2, 0.1});
  using util::bit;
  ins.add_test(bit(0) | bit(1), 1.0, "testAB");
  ins.add_test(bit(0) | bit(2), 1.5, "testAC");
  ins.add_treatment(bit(0), 2.0, "cureA");
  ins.add_treatment(bit(1) | bit(2), 3.0, "cureBC");
  ins.add_treatment(bit(2) | bit(3), 2.5, "cureCD");
  ins.check();
  return ins;
}

}  // namespace ttp::tt
