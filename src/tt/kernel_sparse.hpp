// Sparse companion to the layer-wave kernel (tt/kernel.hpp): the same
// recurrence evaluated over a *reachable* state set instead of the full
// 2^k lattice.
//
// The dense kernel indexes its cost/best tables by mask, which is exactly
// what stops it short of k > 20: the tables are 2^k-sized whether or not
// the DP ever visits those states. The frontier solver
// (tt/solver_frontier.hpp) instead stores only the closure of U under
// S∩T_i / S−T_i, laid out layer-contiguously (popcount-ascending, masks
// ascending within a layer — the same discipline LayerIndex imposes on the
// full lattice), and addresses it through two pieces defined here:
//
//  * StateMap — an open-addressing mask -> slot hash table. Keys are
//    subset masks (< 2^24, see kMaxUniverse), so the all-ones sentinel can
//    never collide with a real key. Linear probing, power-of-two capacity,
//    ≤ 50% load; find() is lock-free-read-safe while no insert runs, which
//    is the only concurrency the frontier solver ever asks of it (parallel
//    expansion phases read, the serial merge between them writes).
//  * eval_states_sparse() — the per-layer wave over slot-indexed tables.
//    Child lookups go through precomputed slot rows (action-major, like
//    PairIndex rows) while validity is recomputed from the masks in
//    register, so an invalid split can safely point its row entry at
//    slot 0 (∅, cost 0): the select after the arithmetic overwrites the
//    value with kInf exactly as the dense tile does. Lane discipline,
//    association order, and the strict-< argmin blend are copied from
//    kernel.cpp / kernel_simd.cpp verbatim, so on the reachable states the
//    sparse wave is bitwise identical to the dense one (the frontier tests
//    pin this). Dispatch piggybacks on active_kernel_variant(): kScalar
//    runs the scalar reference tile, any SIMD variant runs the portable
//    4-wide path (gathers are the bottleneck either way; an AVX2-specific
//    sparse tile measured within noise of the portable one).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "tt/kernel.hpp"

namespace ttp::tt {

/// Open-addressing hash map from subset mask to a 32-bit payload (the
/// frontier solver stores state slots). Capacity is a power of two and at
/// least twice the element count; probing is linear, so lookups of present
/// keys touch one or two cache lines in the common case.
class StateMap {
 public:
  static constexpr std::uint32_t kNotFound = 0xFFFFFFFFu;

  /// Empties the map and reserves capacity for `expected` keys. Keeps the
  /// backing array when it is already large enough (arena reuse).
  void reset(std::size_t expected);

  /// Inserts key -> value; returns false (leaving the stored value alone)
  /// when the key is already present. Grows at 50% load.
  bool insert(Mask key, std::uint32_t value);

  /// The stored value, or kNotFound. Safe to call concurrently from many
  /// threads as long as no insert() runs in parallel.
  std::uint32_t find(Mask key) const noexcept {
    if (cells_.empty()) return kNotFound;
    std::size_t i = hash(key) & index_mask_;
    while (true) {
      const Cell c = cells_[i];
      if (c.key == key) return c.value;
      if (c.key == kEmptyKey) return kNotFound;
      i = (i + 1) & index_mask_;
    }
  }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return cells_.size(); }

 private:
  struct Cell {
    std::uint32_t key;
    std::uint32_t value;
  };
  /// Masks are < 2^24 (kMaxUniverse), so all-ones is unreachable as a key.
  static constexpr std::uint32_t kEmptyKey = 0xFFFFFFFFu;

  static std::uint32_t hash(Mask m) noexcept {
    // splitmix-style avalanche; subset masks are dense in the low bits.
    std::uint32_t h = static_cast<std::uint32_t>(m) * 0x9E3779B1u;
    h ^= h >> 15;
    h *= 0x85EBCA77u;
    h ^= h >> 13;
    return h;
  }

  void rehash(std::size_t capacity_pow2);

  std::vector<Cell> cells_;
  std::size_t index_mask_ = 0;
  std::size_t size_ = 0;
};

/// Evaluates C(S) = min_i M[S,i] and its argmin for `count` states of one
/// layer of the *reachable* closure. Tables are slot-indexed:
///
///   states[p], ws[p]                  mask and p(S) of position p
///   inter[i·stride + p]               slot of C(S∩T_i) (0 = ∅ when empty)
///   minus[i·stride + p]               slot of C(S−T_i) (0 = ∅ when empty)
///   cost[slot], best[slot]            global closure tables; positions p
///                                     write slots slot_base + p
///
/// Validity (∅ ≠ S∩T_i ≠ S for tests, S∩T_i ≠ ∅ for treatments) is
/// recomputed from the masks, so row entries of invalid splits may point at
/// any finalized slot — the builder uses slot 0. `ws[p]` must equal the
/// dense subset_weight_table()[states[p]] bitwise (solver_frontier derives
/// it with the same association), which makes the result bitwise identical
/// to eval_states on the same states. Tie rule: lowest action index.
/// Returns the number of M-evaluations (count · num_actions).
std::uint64_t eval_states_sparse(const ActionSoA& a, const Mask* states,
                                 const double* ws, const std::uint32_t* inter,
                                 const std::uint32_t* minus, std::size_t stride,
                                 std::size_t count, double* cost, int* best,
                                 std::size_t slot_base);

}  // namespace ttp::tt
