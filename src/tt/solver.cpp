#include "tt/solver.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>

namespace ttp::tt {

Tree reconstruct_tree(const Instance& ins, const DpTable& table) {
  const Mask U = ins.universe();
  if (std::isinf(table.cost.at(U))) return Tree{};

  std::vector<TreeNode> nodes;
  std::function<int(Mask)> build = [&](Mask s) -> int {
    const int a = table.best_action.at(s);
    if (a < 0) {
      throw std::runtime_error("reconstruct_tree: no action for feasible state");
    }
    const Action& act = ins.action(a);
    const int self = static_cast<int>(nodes.size());
    nodes.push_back(TreeNode{s, a, -1, -1});
    if (act.is_test) {
      const Mask inter = s & act.set;
      const Mask minus = s & ~act.set;
      nodes[static_cast<std::size_t>(self)].yes = build(inter);
      nodes[static_cast<std::size_t>(self)].no = build(minus);
    } else {
      const Mask minus = s & ~act.set;
      if (minus != 0) {
        nodes[static_cast<std::size_t>(self)].no = build(minus);
      }
    }
    return self;
  };
  const int root = build(U);
  return Tree(std::move(nodes), root);
}

double max_table_diff(const DpTable& a, const DpTable& b) {
  if (a.cost.size() != b.cost.size()) {
    throw std::invalid_argument("max_table_diff: size mismatch");
  }
  double worst = 0.0;
  for (std::size_t s = 0; s < a.cost.size(); ++s) {
    const double ca = a.cost[s];
    const double cb = b.cost[s];
    if (std::isinf(ca) && std::isinf(cb)) continue;
    const double d = std::fabs(ca - cb);
    if (d > worst) worst = d;
  }
  return worst;
}

}  // namespace ttp::tt
