#include "tt/solver_bnb.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "obs/trace.hpp"

namespace ttp::tt {

namespace {

struct Ctx {
  const Instance& ins;
  const std::vector<double>& wt;
  std::vector<double> min_treat;  ///< per object: cheapest covering treatment
  std::unordered_map<Mask, double> memo;
  std::unordered_map<Mask, int> memo_arg;
  std::uint64_t pruned = 0;
};

double lower_bound(const Ctx& ctx, Mask s) {
  double lb = 0.0;
  for (int j = 0; j < ctx.ins.k(); ++j) {
    if (util::has_bit(s, j)) {
      lb += ctx.ins.weight(j) * ctx.min_treat[static_cast<std::size_t>(j)];
    }
  }
  return lb;
}

// Exact C(S); `budget` is the best already-known way to pay for S from the
// caller's perspective — used only to prune WITHIN the action loop, never
// to taint the memoized value (we always finish the loop with the
// state-local best, which is exact).
double solve_state(Ctx& ctx, Mask s);

double action_cost(Ctx& ctx, Mask s, int i, double best_so_far) {
  const Action& a = ctx.ins.action(i);
  const Mask inter = s & a.set;
  const Mask minus = s & ~a.set;
  const double base = a.cost * ctx.wt[s];
  if (a.is_test) {
    if (inter == 0 || minus == 0) return kInf;
    // Prune: optimistic completion via bounds before recursing.
    if (base + lower_bound(ctx, inter) + lower_bound(ctx, minus) >=
        best_so_far) {
      ++ctx.pruned;
      return kInf;
    }
    const double left = solve_state(ctx, inter);
    if (base + left + lower_bound(ctx, minus) >= best_so_far) {
      ++ctx.pruned;
      return kInf;
    }
    return base + left + solve_state(ctx, minus);
  }
  if (inter == 0) return kInf;
  if (base + lower_bound(ctx, minus) >= best_so_far) {
    ++ctx.pruned;
    return kInf;
  }
  return base + solve_state(ctx, minus);
}

double solve_state(Ctx& ctx, Mask s) {
  if (s == 0) return 0.0;
  if (auto it = ctx.memo.find(s); it != ctx.memo.end()) return it->second;

  // Order actions by optimistic estimate so good incumbents arrive early.
  const int N = ctx.ins.num_actions();
  std::vector<std::pair<double, int>> order;
  order.reserve(static_cast<std::size_t>(N));
  for (int i = 0; i < N; ++i) {
    const Action& a = ctx.ins.action(i);
    const Mask inter = s & a.set;
    const Mask minus = s & ~a.set;
    double opt;
    if (a.is_test) {
      if (inter == 0 || minus == 0) continue;
      opt = a.cost * ctx.wt[s] + lower_bound(ctx, s);
    } else {
      if (inter == 0) continue;
      opt = a.cost * ctx.wt[s] + lower_bound(ctx, minus);
    }
    order.emplace_back(opt, i);
  }
  std::sort(order.begin(), order.end());

  double best = kInf;
  int arg = -1;
  for (const auto& [opt, i] : order) {
    if (opt >= best) {
      ++ctx.pruned;
      continue;  // later entries are worse-or-equal optimistically, but
                 // their true costs are incomparable -> keep scanning
    }
    const double v = action_cost(ctx, s, i, best);
    if (v < best || (v == best && i < arg)) {
      best = v;
      arg = i;
    }
  }
  ctx.memo.emplace(s, best);
  ctx.memo_arg.emplace(s, arg);
  return best;
}

}  // namespace

SolveResult BnbSolver::solve(const Instance& ins) const {
  ins.check();
  Ctx ctx{ins, ins.subset_weight_table(), {}, {}, {}, 0};
  ctx.min_treat.assign(static_cast<std::size_t>(ins.k()), kInf);
  for (int i = ins.num_tests(); i < ins.num_actions(); ++i) {
    const Action& a = ins.action(i);
    for (int j = 0; j < ins.k(); ++j) {
      if (util::has_bit(a.set, j)) {
        ctx.min_treat[static_cast<std::size_t>(j)] =
            std::min(ctx.min_treat[static_cast<std::size_t>(j)], a.cost);
      }
    }
  }

  SolveResult res;
  TTP_TRACE_SPAN(root_span, "solve.bnb", res.steps);
  root_span.attr("k", ins.k());
  const std::size_t states = std::size_t{1} << ins.k();
  res.table.k = ins.k();
  res.table.cost.assign(states, kInf);
  res.table.best_action.assign(states, -1);
  res.table.cost[0] = 0.0;

  res.cost = solve_state(ctx, ins.universe());
  for (const auto& [s, v] : ctx.memo) {
    res.table.cost[s] = v;
    res.table.best_action[s] = ctx.memo_arg[s];
  }
  // Tree reconstruction only walks optimal branches, which pruning never
  // cuts (a pruned branch is never optimal), so the pointers are complete.
  res.tree = reconstruct_tree(ins, res.table);
  res.steps.total_ops = ctx.memo.size();
  res.breakdown.add("visited_states", ctx.memo.size());
  res.breakdown.add("pruned_actions", ctx.pruned);
  root_span.attr("visited", static_cast<std::uint64_t>(ctx.memo.size()));
  root_span.attr("pruned", ctx.pruned);
  return res;
}

std::size_t BnbSolver::count_reachable(const Instance& ins) {
  std::unordered_set<Mask> seen{0};
  std::vector<Mask> stack{ins.universe()};
  seen.insert(ins.universe());
  while (!stack.empty()) {
    const Mask s = stack.back();
    stack.pop_back();
    if (s == 0) continue;
    for (const Action& a : ins.actions()) {
      const Mask inter = s & a.set;
      const Mask minus = s & ~a.set;
      if (a.is_test) {
        if (inter == 0 || minus == 0) continue;
        if (seen.insert(inter).second) stack.push_back(inter);
        if (seen.insert(minus).second) stack.push_back(minus);
      } else {
        if (inter == 0) continue;
        if (seen.insert(minus).second) stack.push_back(minus);
      }
    }
  }
  return seen.size();
}

}  // namespace ttp::tt
