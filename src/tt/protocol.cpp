#include "tt/protocol.hpp"

#include <deque>
#include <sstream>
#include <stdexcept>

namespace ttp::tt {

namespace {

std::string objects_of(const Instance& ins, Mask s,
                       const ProtocolOptions& opt) {
  std::string out;
  bool first = true;
  for (int j = 0; j < ins.k(); ++j) {
    if (!util::has_bit(s, j)) continue;
    if (!first) out += ", ";
    first = false;
    if (j < static_cast<int>(opt.object_names.size())) {
      out += opt.object_names[static_cast<std::size_t>(j)];
    } else {
      out += "object " + std::to_string(j);
    }
  }
  return out;
}

}  // namespace

std::string render_protocol(const Instance& ins, const Tree& tree,
                            const ProtocolOptions& opt) {
  if (tree.empty()) {
    throw std::invalid_argument("render_protocol: empty tree");
  }
  // Breadth-first numbering: step 1 is the root; outcomes reference later
  // step numbers.
  std::vector<int> order;        // node index per step (0-based)
  std::vector<int> step_of(static_cast<std::size_t>(tree.size()), -1);
  std::deque<int> queue{tree.root()};
  while (!queue.empty()) {
    const int n = queue.front();
    queue.pop_front();
    step_of[static_cast<std::size_t>(n)] = static_cast<int>(order.size());
    order.push_back(n);
    const TreeNode& t = tree.node(n);
    if (t.yes >= 0) queue.push_back(t.yes);
    if (t.no >= 0) queue.push_back(t.no);
  }

  std::ostringstream os;
  os << "Protocol (" << order.size() << " steps";
  if (opt.include_costs) {
    os << ", expected cost " << tree.expected_cost(ins);
  }
  os << ")\n\n";
  for (std::size_t s = 0; s < order.size(); ++s) {
    const TreeNode& t = tree.node(order[s]);
    const Action& a = ins.action(t.action);
    os << s + 1 << ". ";
    if (a.is_test) {
      os << "Run test \"" << a.name << "\"";
    } else {
      os << "Apply treatment \"" << a.name << "\"";
    }
    if (opt.include_costs) os << " (cost " << a.cost << ")";
    if (opt.include_candidates) {
      os << "  [candidates: " << objects_of(ins, t.state, opt) << "]";
    }
    os << "\n";
    if (a.is_test) {
      os << "   - positive -> step "
         << step_of[static_cast<std::size_t>(t.yes)] + 1 << "\n";
      os << "   - negative -> step "
         << step_of[static_cast<std::size_t>(t.no)] + 1 << "\n";
    } else if (t.no >= 0) {
      os << "   - cured -> done\n";
      os << "   - still faulty -> step "
         << step_of[static_cast<std::size_t>(t.no)] + 1 << "\n";
    } else {
      os << "   - done (covers every remaining candidate)\n";
    }
  }
  return os.str();
}

}  // namespace ttp::tt
