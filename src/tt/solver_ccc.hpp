// The paper's TT algorithm executed on the cube-connected-cycles machine —
// the step the paper actually cares about ("this algorithm is realized on
// the Boolean Vector Machine, a fully designed cube-connected-cycle
// system"). Word-level: operands move whole, so steps() here isolates the
// CCC communication cost from the bit-serial cost (the BVM solver pays
// both). Produces tables identical to HypercubeSolver / SequentialSolver.
#pragma once

#include "net/ccc.hpp"
#include "tt/solver_hypercube.hpp"

namespace ttp::tt {

class CccSolver {
 public:
  SolveResult solve(const Instance& ins) const;

  /// The machine shape used for an instance: minimal cycle-size exponent r
  /// with k + a - r <= 2^r lateral dimensions.
  static net::CccConfig machine_shape(const Instance& ins);
};

}  // namespace ttp::tt
