// The binary testing problem (Garey; Loveland) that TT generalizes
// (paper §1: "it generalizes the binary testing problem by introducing
// treatments on an equal basis with tests").
//
// Binary testing: identify the unknown faulty object using tests only,
// minimizing the expected test cost; a state is terminal when |S| = 1.
// The relationship to TT made precise and testable:
//   * identification-first is always a legal TT strategy, so for a TT
//     instance whose treatments are singletons {j} with costs c_j,
//         C_tt(U)  <=  C_bt(U) + Σ_j P_j·c_j ;
//   * the inequality is strict whenever trying treatments early (the thing
//     binary testing cannot express) is cheaper — e.g. when tests are dear.
// For unit-cost tests, the expected number of tests is bounded below by the
// Shannon entropy of the prior (each binary outcome yields ≤ 1 bit).
#pragma once

#include <optional>
#include <vector>

#include "tt/instance.hpp"

namespace ttp::tt {

struct BinaryTestingResult {
  double cost = 0.0;  ///< expected identification cost; +inf if impossible
  std::vector<double> state_cost;  ///< C_bt(S) per mask
  std::vector<int> best_test;      ///< argmin test per state (-1 at leaves)
};

/// Solves binary testing over the instance's TEST actions only (treatments
/// are ignored). Weights are the instance's priors, unnormalized.
BinaryTestingResult solve_binary_testing(const Instance& ins);

/// Shannon entropy lower bound on the expected number of unit-cost binary
/// tests: H(P / p(U)) · p(U) in the instance's unnormalized weighting.
double entropy_lower_bound(const Instance& ins);

/// Builds the TT instance "identify then fix": the given instance's tests
/// plus singleton treatments of cost `fix_cost[j]`.
Instance with_singleton_treatments(const Instance& tests_only,
                                   const std::vector<double>& fix_cost);

}  // namespace ttp::tt
