// The shared layer-wave DP kernel.
//
// Every host-side table-building solver (SequentialSolver, ThreadsSolver,
// and the hypercube StateParallelSolver's per-action fold) evaluates the
// same recurrence
//
//   M[S,i] = t_i·p(S) + C(S∩T_i) + C(S−T_i)   tests,      ∅ ≠ S∩T_i ≠ S
//   M[S,i] = t_i·p(S) + C(S−T_i)              treatments, S∩T_i ≠ ∅
//
// and this header is where that evaluation lives, once, in a form shaped
// for throughput rather than exposition:
//
//  * ActionSoA — a structure-of-arrays copy of the instance's actions
//    (set, ~set, cost, is_test). The AoS `Action` carries a std::string
//    name, so scanning a vector<Action> in the inner loop drags ~56-byte
//    strides through the cache and a bounds-checked `actions_.at(i)` per
//    evaluation; the SoA keeps the three words the loop needs contiguous.
//  * eval_states() — cache-blocked tiling over (layer-states × actions):
//    states are processed in tiles of kKernelTile, actions in two runs
//    (tests, then treatments, removing the is_test branch), and validity
//    is folded in branch-free with selects instead of early returns. The
//    arithmetic (association order, strict `<` minimization ascending in
//    i) is bitwise identical to the reference action_value() loop, so
//    kernel-backed solvers produce byte-identical cost/best_action tables.
//  * eval_pairs()/reduce_pairs() — the same evaluation split into the
//    paper's (S,i)-pair phase plus a per-state min phase, for
//    ThreadsSolver's pair-parallel mode.
//  * SolveArena — owns the cost/best-action/M-buffer storage plus the
//    per-k layer index and the SoA, all reused across solves so a
//    high-QPS caller stops re-deriving layer subsets and re-allocating
//    tables on every request.
//  * solve_with_arena() — the full sequential layer sweep on arena
//    storage: the serving hot path shared by SequentialSolver and
//    BatchSolver (solver_batch.hpp).
//
// Step accounting is the caller's policy, not the kernel's: eval_states
// returns the number of M-evaluations performed and each solver charges
// its documented cost model (see solver.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "tt/solver.hpp"

namespace ttp::tt {

/// M[S,i] for a test, in the exact association order of action_value():
/// ((t_i·p(S)) + C(S∩T_i)) + C(S−T_i). Single-sourced so the tiled kernel
/// and the machine solvers' local folds stay bitwise identical.
inline double m_test_value(double t_cost, double ps, double c_inter,
                           double c_minus) noexcept {
  return (t_cost * ps + c_inter) + c_minus;
}

/// M[S,i] for a treatment: t_i·p(S) + C(S−T_i).
inline double m_treat_value(double t_cost, double ps,
                            double c_minus) noexcept {
  return t_cost * ps + c_minus;
}

/// Structure-of-arrays action layout. Indices coincide with the instance's
/// action indices (tests 0..num_tests-1, then treatments), so argmins read
/// straight out of the kernel are already in the solver's convention.
struct ActionSoA {
  std::vector<Mask> set;               ///< T_i
  std::vector<Mask> nset;              ///< ~T_i (precomputed complement)
  std::vector<double> cost;            ///< t_i
  std::vector<std::uint8_t> is_test;   ///< 1 for tests (indices < num_tests)
  int num_tests = 0;
  int num_actions = 0;

  void build(const Instance& ins);
};

/// All 2^k masks grouped by popcount layer (ascending within each layer —
/// the same order util::layer_subsets produces), built in one counting-sort
/// pass and cached by SolveArena so repeated solves at the same k never
/// re-enumerate subsets.
class LayerIndex {
 public:
  void build(int k);
  int k() const noexcept { return k_; }

  /// The masks of layer |S| == j (j in 0..k).
  std::span<const Mask> layer(int j) const {
    const auto b = offsets_[static_cast<std::size_t>(j)];
    const auto e = offsets_[static_cast<std::size_t>(j) + 1];
    return {masks_.data() + b, e - b};
  }

 private:
  int k_ = -1;
  std::vector<Mask> masks_;
  std::vector<std::size_t> offsets_;  ///< k+2 entries; layer j = [j, j+1)
};

/// States per kernel tile. The tile's running best/argmin and hoisted
/// p(S) values live in ~3 KiB of stack, well inside L1.
inline constexpr std::size_t kKernelTile = 128;

/// Evaluates C(S) = min_i M[S,i] and its argmin for `count` states of one
/// layer (lower layers finalized in `cost`), writing cost[s] and best[s]
/// for each. Tie rule: lowest action index. Returns the number of
/// M-evaluations performed (count · num_actions).
std::uint64_t eval_states(const ActionSoA& a, const double* wt,
                          const Mask* states, std::size_t count, double* cost,
                          int* best);

/// Pair phase of the paper's decomposition: M[S,i] for the pair indices
/// [begin, end) of a layer, where pair idx maps to (states[idx / N],
/// idx % N). Results land in m[idx] (layer-relative layout).
void eval_pairs(const ActionSoA& a, const double* wt, const double* cost,
                const Mask* states, std::size_t begin, std::size_t end,
                double* m);

/// Reduce phase: per-state min over m[pos·N .. pos·N+N) for state positions
/// [begin, end), ascending i so ties match eval_states exactly.
void reduce_pairs(const ActionSoA& a, const double* m, const Mask* states,
                  std::size_t begin, std::size_t end, double* cost, int* best);

/// Reusable solve storage. One arena per solving thread; everything grows
/// monotonically and is recycled across solves, so steady-state serving
/// performs no layer re-derivation and no table allocation beyond the
/// DpTable handed back to the caller.
class SolveArena {
 public:
  /// Layer index for universe size k (rebuilt only when k changes).
  const LayerIndex& layers(int k) {
    if (layers_.k() != k) layers_.build(k);
    return layers_;
  }

  /// SoA for this instance's actions (rebuilt per solve; O(N)).
  const ActionSoA& actions(const Instance& ins) {
    soa_.build(ins);
    return soa_;
  }

  /// Resets the working tables to the DP start state: cost ≡ kInf except
  /// cost[∅] = 0, best ≡ -1.
  void prepare_tables(std::size_t states);

  std::vector<double>& cost() noexcept { return cost_; }
  std::vector<int>& best() noexcept { return best_; }

  /// M-buffer of at least n doubles for the pair-parallel phases.
  std::vector<double>& m_buffer(std::size_t n) {
    if (m_.size() < n) m_.resize(n);
    return m_;
  }

 private:
  LayerIndex layers_;
  ActionSoA soa_;
  std::vector<double> cost_;
  std::vector<int> best_;
  std::vector<double> m_;
};

/// Full sequential layer-wave solve on `arena` storage. Identical results
/// (bitwise, including argmins and steps) to the classic per-call
/// action_value sweep; `span_name` names the root trace span so callers
/// keep their own identity ("solve.sequential", "solve.batch", ...).
/// Sequential cost model: steps.parallel_steps == steps.total_ops == number
/// of M-evaluations.
SolveResult solve_with_arena(const Instance& ins, SolveArena& arena,
                             std::string_view span_name = "solve.sequential");

}  // namespace ttp::tt
