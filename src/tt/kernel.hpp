// The shared layer-wave DP kernel.
//
// Every host-side table-building solver (SequentialSolver, ThreadsSolver,
// and the hypercube StateParallelSolver's per-action fold) evaluates the
// same recurrence
//
//   M[S,i] = t_i·p(S) + C(S∩T_i) + C(S−T_i)   tests,      ∅ ≠ S∩T_i ≠ S
//   M[S,i] = t_i·p(S) + C(S−T_i)              treatments, S∩T_i ≠ ∅
//
// and this header is where that evaluation lives, once, in a form shaped
// for throughput rather than exposition:
//
//  * ActionSoA — a structure-of-arrays copy of the instance's actions
//    (set, ~set, cost, is_test). The AoS `Action` carries a std::string
//    name, so scanning a vector<Action> in the inner loop drags ~56-byte
//    strides through the cache and a bounds-checked `actions_.at(i)` per
//    evaluation; the SoA keeps the three words the loop needs contiguous.
//  * eval_states() — the per-layer wave. Dispatches once, at first use, to
//    one of three byte-identical implementations (see "Kernel variants"
//    below): the scalar reference (cache-blocked tiles, branch-free
//    selects), a portable 4-wide SIMD path (GCC/Clang vector extensions),
//    or an AVX2 path (gathered table reads, vector blend min/argmin).
//    The arithmetic (association order, strict `<` minimization ascending
//    in i) is lane-for-lane identical to the reference action_value()
//    loop, so every variant produces byte-identical cost/best_action
//    tables (tests/test_kernel_simd.cpp enforces this).
//  * eval_pairs()/reduce_pairs() — the same evaluation split into the
//    paper's (S,i)-pair phase plus a per-state min phase, for
//    ThreadsSolver's pair-parallel mode. Dispatched like eval_states.
//  * SolveArena — owns the cost/best-action/M-buffer storage (64-byte
//    aligned, growth-capped — see AlignedBuf) plus the per-k layer index,
//    the SoA, and the per-(k, action-set) gather-index table (PairIndex),
//    all reused across solves so a high-QPS caller stops re-deriving layer
//    subsets and re-allocating tables on every request.
//  * solve_with_arena() — the full sequential layer sweep on arena
//    storage: the serving hot path shared by SequentialSolver and
//    BatchSolver (solver_batch.hpp).
//
// Kernel variants & dispatch
// --------------------------
// The active variant is resolved once from the TTP_KERNEL environment
// variable ("scalar", "simd", "portable", "avx2", "auto"; unset == auto ==
// best SIMD the CPU supports) plus a one-time CPUID check, and can be
// forced programmatically with set_kernel_variant() (tests, benches, the
// serving daemon's knob). The scalar path is the normative reference; the
// SIMD paths assign one STATE per vector lane and walk actions in the same
// ascending order with the same strict-< blend, so min/argmin association
// matches the scalar loop lane for lane (docs/kernel.md has the proof
// sketch). Remainder states (count % lane-width) always go through the
// scalar tile, so layer sizes not divisible by the vector width cannot
// diverge.
//
// Step accounting is the caller's policy, not the kernel's: eval_states
// returns the number of M-evaluations performed and each solver charges
// its documented cost model (see solver.hpp).
#pragma once

#include <cassert>
#include <cstdint>
#include <new>
#include <span>
#include <string_view>
#include <vector>

#include "tt/solver.hpp"

namespace ttp::tt {

/// M[S,i] for a test, in the exact association order of action_value():
/// ((t_i·p(S)) + C(S∩T_i)) + C(S−T_i). Single-sourced so the tiled kernel
/// and the machine solvers' local folds stay bitwise identical.
inline double m_test_value(double t_cost, double ps, double c_inter,
                           double c_minus) noexcept {
  return (t_cost * ps + c_inter) + c_minus;
}

/// M[S,i] for a treatment: t_i·p(S) + C(S−T_i).
inline double m_treat_value(double t_cost, double ps,
                            double c_minus) noexcept {
  return t_cost * ps + c_minus;
}

// ---------------------------------------------------------------------------
// Kernel variant selection

/// The resolved kernel implementations. kScalar is the normative reference;
/// the two SIMD variants are byte-identical accelerations of it.
enum class KernelVariant {
  kScalar,        ///< Reference tiles (PR 2).
  kSimdPortable,  ///< 4-wide GCC/Clang vector extensions; any target.
  kSimdAvx2,      ///< AVX2 gathers + blends; needs CPU + build support.
};

/// The variant all kernel entry points currently dispatch to. First call
/// resolves TTP_KERNEL + CPUID; later calls are one relaxed atomic load.
KernelVariant active_kernel_variant() noexcept;

/// "scalar", "simd-portable", or "simd-avx2".
std::string_view kernel_variant_name(KernelVariant v) noexcept;

/// kernel_variant_name(active_kernel_variant()).
std::string_view active_kernel_variant_name() noexcept;

/// Forces the dispatch. Accepts "scalar", "portable", "avx2", "simd" (best
/// available SIMD), or "auto" (same resolution as an unset TTP_KERNEL).
/// Returns false — and leaves the dispatch unchanged — when the requested
/// variant is not available on this CPU/build (only possible for "avx2").
bool set_kernel_variant(std::string_view spec) noexcept;

/// True when the AVX2 variant is compiled in AND the CPU reports AVX2.
bool kernel_avx2_available() noexcept;

// ---------------------------------------------------------------------------
// Shared data structures

/// Structure-of-arrays action layout. Indices coincide with the instance's
/// action indices (tests 0..num_tests-1, then treatments), so argmins read
/// straight out of the kernel are already in the solver's convention.
struct ActionSoA {
  std::vector<Mask> set;               ///< T_i
  std::vector<Mask> nset;              ///< ~T_i (precomputed complement)
  std::vector<double> cost;            ///< t_i
  std::vector<std::uint8_t> is_test;   ///< 1 for tests (indices < num_tests)
  int num_tests = 0;
  int num_actions = 0;

  void build(const Instance& ins);
};

/// All 2^k masks grouped by popcount layer (ascending within each layer —
/// the same order util::layer_subsets produces), built in one counting-sort
/// pass and cached by SolveArena so repeated solves at the same k never
/// re-enumerate subsets.
class LayerIndex {
 public:
  void build(int k);
  int k() const noexcept { return k_; }

  /// The masks of layer |S| == j (j in 0..k).
  std::span<const Mask> layer(int j) const {
    const auto b = offsets_[static_cast<std::size_t>(j)];
    const auto e = offsets_[static_cast<std::size_t>(j) + 1];
    return {masks_.data() + b, e - b};
  }

  /// Position of layer j's first state within the 0..2^k-1 enumeration
  /// (PairIndex rows are laid out in this global order).
  std::size_t layer_begin(int j) const {
    return offsets_[static_cast<std::size_t>(j)];
  }

 private:
  int k_ = -1;
  std::vector<Mask> masks_;
  std::vector<std::size_t> offsets_;  ///< k+2 entries; layer j = [j, j+1)
};

/// 64-byte-aligned, growth-capped storage for the arena's flat tables.
/// resize_discard() never copies old contents on growth — every user fully
/// reinitializes (prepare_tables, PairIndex::build, the pair-phase M
/// buffer) — and capacity is monotone, so steady-state arena reuse touches
/// the allocator exactly zero times. Alignment is asserted in debug builds;
/// 64 bytes covers a full cache line and every vector width up to AVX-512.
template <typename T>
class AlignedBuf {
  static_assert(std::is_trivial_v<T>,
                "AlignedBuf skips construction; trivial types only");

 public:
  static constexpr std::size_t kAlign = 64;

  AlignedBuf() = default;
  AlignedBuf(const AlignedBuf&) = delete;
  AlignedBuf& operator=(const AlignedBuf&) = delete;
  ~AlignedBuf() { release(); }

  T* data() noexcept { return ptr_; }
  const T* data() const noexcept { return ptr_; }
  std::size_t size() const noexcept { return size_; }

  /// size() becomes n; contents are indeterminate (never copied). Only
  /// reallocates when n exceeds every size seen before.
  void resize_discard(std::size_t n) {
    if (n > cap_) {
      release();
      ptr_ = static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t{kAlign}));
      cap_ = n;
    }
    size_ = n;
    assert(reinterpret_cast<std::uintptr_t>(ptr_) % kAlign == 0 &&
           "SolveArena tables must be 64-byte aligned");
  }

 private:
  void release() noexcept {
    if (ptr_ != nullptr) {
      ::operator delete(ptr_, std::align_val_t{kAlign});
      ptr_ = nullptr;
    }
    cap_ = 0;
    size_ = 0;
  }

  T* ptr_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

/// Precomputed gather indices: for every (layer j, action i, position p)
/// the subset indices the recurrence reads, laid out action-major and
/// layer-contiguous:
///
///   inter[row(j,i) + p] = states_j[p] & T_i      (= index of C(S∩T_i))
///   minus[row(j,i) + p] = states_j[p] & ~T_i     (= index of C(S−T_i))
///
/// where states_j is LayerIndex::layer(j) and row(j,i) starts at
/// layer_begin(j)·N + i·|layer j|. The SIMD eval_states loads four indices
/// with one 128-bit load (and prefetches the next tile's) instead of
/// recomputing the ANDs per evaluation, and — because the table depends
/// only on (k, action sets) — BatchSolver / serving arenas reuse it across
/// every request with the same action structure. Weights and costs do NOT
/// invalidate it.
class PairIndex {
 public:
  /// Hard cap on table bytes (inter + minus). Above this, ensure() reports
  /// false and the SIMD paths compute indices in-register instead; keeps a
  /// k=24 arena from allocating gigabytes behind the caller's back.
  static constexpr std::size_t kMaxBytes = std::size_t{64} << 20;

  /// Builds for (layers.k(), a) unless the cached table already matches
  /// (exact set comparison, no hash collisions). Returns false when the
  /// table would exceed kMaxBytes.
  bool ensure(const LayerIndex& layers, const ActionSoA& a);

  /// Row base for (layer j, action i); valid positions are
  /// 0..|layer j|-1. Call only after a successful ensure().
  const std::uint32_t* inter_row(int j, int i) const noexcept {
    return inter_.data() + row_offset(j, i);
  }
  const std::uint32_t* minus_row(int j, int i) const noexcept {
    return minus_.data() + row_offset(j, i);
  }

  /// Distance between consecutive action rows of layer j (= |layer j|).
  std::size_t stride(int j) const noexcept {
    return layer_size_[static_cast<std::size_t>(j)];
  }

 private:
  std::size_t row_offset(int j, int i) const noexcept {
    return layer_off_[static_cast<std::size_t>(j)] +
           static_cast<std::size_t>(i) * stride(j);
  }

  int k_ = -1;
  std::vector<Mask> sets_;  ///< exact match key: the action sets
  std::vector<std::size_t> layer_off_;
  std::vector<std::size_t> layer_size_;
  AlignedBuf<std::uint32_t> inter_;
  AlignedBuf<std::uint32_t> minus_;
};

/// Largest PairIndex (inter + minus bytes) the solve paths will route
/// through a KernelCtx. The precomputed rows only pay off while they stay
/// cache-resident: each evaluation trades two register ANDs for an 8-byte
/// index load, so once the table spills L2 the loads cost more bandwidth
/// than they save (measured ~20% regression at k=14, N=20 on a 2 MiB-L2
/// part). Above this, solves run ctx-free and the SIMD kernels compute
/// indices in-register.
inline constexpr std::size_t kPairIndexHotBytes = std::size_t{1} << 20;

/// Optional acceleration context for eval_states: the PairIndex rows of the
/// layer being evaluated. `inter`/`minus` point at the (j, action 0) rows,
/// `stride` is the layer size, and `base` is the position of states[0]
/// within the layer (nonzero when a caller evaluates a sub-range, as
/// ThreadsSolver does). Passing nullptr is always valid — the SIMD paths
/// then compute the ANDs in vector registers.
struct KernelCtx {
  const std::uint32_t* inter = nullptr;
  const std::uint32_t* minus = nullptr;
  std::size_t stride = 0;
  std::size_t base = 0;
};

/// States per scalar kernel tile. The tile's running best/argmin and
/// hoisted p(S) values live in ~3 KiB of stack, well inside L1.
inline constexpr std::size_t kKernelTile = 128;

/// Evaluates C(S) = min_i M[S,i] and its argmin for `count` states of one
/// layer (lower layers finalized in `cost`), writing cost[s] and best[s]
/// for each. Tie rule: lowest action index. Returns the number of
/// M-evaluations performed (count · num_actions). Dispatches to the active
/// kernel variant; `ctx` (optional) supplies precomputed gather indices.
std::uint64_t eval_states(const ActionSoA& a, const double* wt,
                          const Mask* states, std::size_t count, double* cost,
                          int* best, const KernelCtx* ctx = nullptr);

/// Pair phase of the paper's decomposition: M[S,i] for the pair indices
/// [begin, end) of a layer, where pair idx maps to (states[idx / N],
/// idx % N). Results land in m[idx] (layer-relative layout).
void eval_pairs(const ActionSoA& a, const double* wt, const double* cost,
                const Mask* states, std::size_t begin, std::size_t end,
                double* m);

/// Reduce phase: per-state min over m[pos·N .. pos·N+N) for state positions
/// [begin, end), ascending i so ties match eval_states exactly.
void reduce_pairs(const ActionSoA& a, const double* m, const Mask* states,
                  std::size_t begin, std::size_t end, double* cost, int* best);

/// Reusable solve storage. One arena per solving thread; everything grows
/// monotonically and is recycled across solves, so steady-state serving
/// performs no layer re-derivation and no table allocation beyond the
/// DpTable handed back to the caller.
class SolveArena {
 public:
  /// Layer index for universe size k (rebuilt only when k changes).
  const LayerIndex& layers(int k) {
    if (layers_.k() != k) layers_.build(k);
    return layers_;
  }

  /// SoA for this instance's actions (rebuilt per solve; O(N)).
  const ActionSoA& actions(const Instance& ins) {
    soa_.build(ins);
    return soa_;
  }

  /// Resets the working tables to the DP start state: cost ≡ kInf except
  /// cost[∅] = 0, best ≡ -1.
  void prepare_tables(std::size_t states);

  double* cost() noexcept { return cost_.data(); }
  const double* cost() const noexcept { return cost_.data(); }
  int* best() noexcept { return best_.data(); }
  const int* best() const noexcept { return best_.data(); }
  std::size_t table_size() const noexcept { return cost_.size(); }

  /// M-buffer of at least n doubles for the pair-parallel phases (contents
  /// indeterminate — every pair slot is written before it is read).
  double* m_buffer(std::size_t n) {
    if (m_.size() < n) m_.resize_discard(n);
    return m_.data();
  }

  /// Gather-index table for the current (layers(), actions()) pair —
  /// call those first. Returns nullptr when the table would exceed
  /// PairIndex::kMaxBytes; solve paths then run without a KernelCtx.
  const PairIndex* pair_index() {
    return pairs_.ensure(layers_, soa_) ? &pairs_ : nullptr;
  }

 private:
  LayerIndex layers_;
  ActionSoA soa_;
  AlignedBuf<double> cost_;
  AlignedBuf<int> best_;
  AlignedBuf<double> m_;
  PairIndex pairs_;
};

/// Full sequential layer-wave solve on `arena` storage. Identical results
/// (bitwise, including argmins and steps) to the classic per-call
/// action_value sweep; `span_name` names the root trace span so callers
/// keep their own identity ("solve.sequential", "solve.batch", ...).
/// Sequential cost model: steps.parallel_steps == steps.total_ops == number
/// of M-evaluations.
SolveResult solve_with_arena(const Instance& ins, SolveArena& arena,
                             std::string_view span_name = "solve.sequential");

namespace detail {

/// The dispatch table every public kernel entry point routes through. One
/// instance per variant; resolve/force swings an atomic pointer.
struct KernelOps {
  std::uint64_t (*eval_states)(const ActionSoA&, const double*, const Mask*,
                               std::size_t, double*, int*, const KernelCtx*);
  void (*eval_pairs)(const ActionSoA&, const double*, const double*,
                     const Mask*, std::size_t, std::size_t, double*);
  void (*reduce_pairs)(const ActionSoA&, const double*, const Mask*,
                       std::size_t, std::size_t, double*, int*);
  KernelVariant variant;
};

/// The scalar reference tile (m <= kKernelTile): the SIMD variants call it
/// for remainder lanes so sub-width counts stay byte-identical by
/// construction.
void eval_tile_scalar(const ActionSoA& a, const double* wt, const Mask* states,
                      std::size_t m, double* cost, int* best);

/// One scalar M[S,i] with the validity select folded in; shared by the
/// SIMD eval_pairs remainder paths.
double eval_pair_scalar(const ActionSoA& a, const double* wt,
                        const double* cost, Mask s, std::size_t i);

const KernelOps& scalar_ops() noexcept;
const KernelOps& portable_ops() noexcept;  // kernel_simd.cpp
#if defined(TTP_KERNEL_HAS_AVX2)
const KernelOps& avx2_ops() noexcept;      // kernel_simd_avx2.cpp
#endif

}  // namespace detail

}  // namespace ttp::tt
