// Machine-sizing arithmetic behind the paper's feasibility claims (§1):
// the algorithm needs O(N·2^k) PEs; a 2^20-PE machine handles ~15 candidates
// even with all N = O(2^k) actions; ~20 candidates when N = O(k^2).
#pragma once

#include <cstdint>
#include <string>

namespace ttp::tt {

struct SizingRow {
  int k = 0;
  std::uint64_t num_actions = 0;  ///< N (padded to a power of two).
  int machine_dims = 0;           ///< log2 of required PEs.
  std::uint64_t pes = 0;          ///< N_pad · 2^k.
  bool fits_2_20 = false;
  bool fits_2_30 = false;
};

/// PEs required for k objects and N actions (N rounded up to a power of 2).
SizingRow size_for(int k, std::uint64_t num_actions);

/// Largest k whose TT instance fits in 2^budget_log2 PEs when N is given by
/// the supplied policy.
enum class ActionBudget {
  kAllSubsets,  ///< N = 2^k (every subset as both test and treatment -> 2^(k+1))
  kQuadratic,   ///< N = k^2
  kLinear,      ///< N = 4k
};
int max_k_for_machine(int budget_log2, ActionBudget policy);

std::uint64_t actions_for(int k, ActionBudget policy);
std::string budget_name(ActionBudget policy);

}  // namespace ttp::tt
