// Machine-sizing arithmetic behind the paper's feasibility claims (§1):
// the algorithm needs O(N·2^k) PEs; a 2^20-PE machine handles ~15 candidates
// even with all N = O(2^k) actions; ~20 candidates when N = O(k^2).
#pragma once

#include <cstdint>
#include <string>

namespace ttp::tt {

class Instance;

struct SizingRow {
  int k = 0;
  std::uint64_t num_actions = 0;  ///< N (padded to a power of two).
  int machine_dims = 0;           ///< log2 of required PEs.
  std::uint64_t pes = 0;          ///< N_pad · 2^k.
  bool fits_2_20 = false;
  bool fits_2_30 = false;
};

/// PEs required for k objects and N actions (N rounded up to a power of 2).
SizingRow size_for(int k, std::uint64_t num_actions);

/// Largest k whose TT instance fits in 2^budget_log2 PEs when N is given by
/// the supplied policy.
enum class ActionBudget {
  kAllSubsets,  ///< N = 2^k (every subset as both test and treatment -> 2^(k+1))
  kQuadratic,   ///< N = k^2
  kLinear,      ///< N = 4k
};
int max_k_for_machine(int budget_log2, ActionBudget policy);

std::uint64_t actions_for(int k, ActionBudget policy);
std::string budget_name(ActionBudget policy);

/// Outcome of a bounded reachable-closure measurement (see
/// solver_frontier.hpp). `exact` means the expansion finished under the
/// cap and `states` is |R| exactly; otherwise the cap was hit and `states`
/// is only a lower bound (> max_states).
struct ReachableEstimate {
  std::uint64_t states = 0;
  bool exact = false;
};

/// Measures the reachable closure of `ins` by running the frontier
/// expansion with a `max_states` cap. This is the admission-time sizing
/// primitive for the sparse solver: an exact result that fits the sparse
/// byte budget (states · kSparseBytesPerState) guarantees the solve-time
/// expansion — run with the same cap — also completes. Cost is
/// O(min(|R|, max_states) · N); runs serially on the caller's thread with
/// function-local scratch, so it is safe to call concurrently.
ReachableEstimate estimate_reachable(const Instance& ins,
                                     std::uint64_t max_states);

}  // namespace ttp::tt
