#include "tt/solver_hypercube.hpp"

#include <cmath>

#include "obs/trace.hpp"

namespace ttp::tt {

int HypercubeSolver::action_dims(const Instance& ins) {
  return util::ceil_log2(static_cast<std::uint64_t>(
      std::max(2, ins.num_actions())));
}

int HypercubeSolver::machine_dims(const Instance& ins) {
  return ins.k() + action_dims(ins);
}

SolveResult HypercubeSolver::solve(const Instance& ins) const {
  ins.check();
  SolveResult res;
  const int k = ins.k();
  const int N = ins.num_actions();
  const int a = action_dims(ins);
  const int npad = 1 << a;
  const std::vector<double>& wt = ins.subset_weight_table();

  net::HypercubeMachine<TtPeState> m(k + a);

  TTP_TRACE_SPAN(root_span, "solve.hypercube", res.steps);
  root_span.attr("k", k);
  root_span.attr("dims", k + a);
  root_span.attr("pes", m.size());

  // --- Initialization (paper §5 first loop + §7 PE configuration). ---
  TTP_TRACE_SPAN(init_span, "init", m.steps());
  m.local_step([&](std::size_t pe, TtPeState& st) {
    const int i = static_cast<int>(pe) & (npad - 1);
    const Mask s = static_cast<Mask>(pe >> a);
    st.s = s;
    st.layer = util::popcount(s);
    st.best = i;
    if (i < N) {
      const Action& act = ins.action(i);
      st.t = act.set;
      st.is_test = act.is_test;
      st.pad = false;
      st.tp = s == 0 ? 0.0 : act.cost * wt[s];
    } else {
      st.t = ins.universe();  // paper: T_N..T_{2^a-1} = U, treatments, INF
      st.is_test = false;
      st.pad = true;
      st.tp = kInf;
    }
    st.m = (s == 0) ? 0.0 : kInf;
    st.r = st.q = kInf;
  });
  init_span.finish();

  for (int j = 1; j <= k; ++j) {
    TTP_TRACE_SPAN(layer_span, "layer", m.steps());
    layer_span.attr("j", j);
    // Copy: R = Q = M on every PE (predicate P1 has no layer restriction).
    m.local_step([&](std::size_t, TtPeState& st) {
      st.r = st.m;
      st.q = st.m;
    });

    // e-loop: conditional subset broadcast along the set dimensions. The
    // receiver is the hi PE (bit a+e of the address, i.e. e ∈ S); both pair
    // members share i, hence T_i.
    for (int e = 0; e < k; ++e) {
      m.dim_step(a + e, [&](int, TtPeState& lo, TtPeState& hi) {
        if (util::has_bit(hi.t, e)) hi.r = lo.r;  // e ∈ S∩T_i
      });
      m.dim_step(a + e, [&](int, TtPeState& lo, TtPeState& hi) {
        if (!util::has_bit(hi.t, e)) hi.q = lo.q;  // e ∈ S−T_i
      });
    }

    // Combine on layer-j PEs: M = R + TP (+ Q for tests).
    m.local_step([&](std::size_t pe, TtPeState& st) {
      if (st.layer != j) return;
      const int i = static_cast<int>(pe) & (npad - 1);
      // Same association order as action_value(): (TP + C(S∩T)) + C(S−T),
      // so doubles come out bitwise identical to the sequential solver.
      st.m = st.is_test ? (st.tp + st.q) + st.r : st.tp + st.r;
      st.best = i;  // reset argmin carrier before the reduction
    });

    // ASCEND min over the action dimensions; ties keep the lower index so
    // the reconstruction matches the sequential solver exactly.
    for (int t = 0; t < a; ++t) {
      m.dim_step(t, [&](int, TtPeState& lo, TtPeState& hi) {
        if (lo.layer != j) return;
        double bm = lo.m;
        int bi = lo.best;
        if (hi.m < bm || (hi.m == bm && hi.best < bi)) {
          bm = hi.m;
          bi = hi.best;
        }
        lo.m = hi.m = bm;
        lo.best = hi.best = bi;
      });
    }
  }

  // --- Extraction: PE (S, 0) holds C(S) and the argmin. ---
  TTP_TRACE_SPAN(extract_span, "extract", m.steps());
  const std::size_t states = std::size_t{1} << k;
  res.table.k = k;
  res.table.cost.assign(states, kInf);
  res.table.best_action.assign(states, -1);
  res.table.cost[0] = 0.0;
  for (std::size_t s = 1; s < states; ++s) {
    const TtPeState& st = m.at(s << a);
    res.table.cost[s] = st.m;
    res.table.best_action[s] =
        std::isinf(st.m) ? -1 : st.best;
  }

  res.steps = m.steps();
  res.cost = res.table.root_cost();
  res.tree = reconstruct_tree(ins, res.table);
  res.breakdown.add("machine_dims", static_cast<std::uint64_t>(k + a));
  res.breakdown.add("pes", m.size());
  return res;
}

}  // namespace ttp::tt
