// The paper's end goal: the TT dynamic program as a bit-serial microprogram
// on the Boolean Vector Machine (§6 algorithm + §7 implementation scheme).
//
// PE address = S‖i (set high, action index low), values are p-bit saturating
// fixed-point spread over register rows, INF = all-ones. Every step of the
// §6 listing maps onto microcode:
//   copy R=Q=M            row moves
//   e-loop                dim_exchange_read along set dims + B-mux adoption
//                         gated by e∈S∩T_i / e∈S−T_i (processor-ID + T_i)
//   M=R+TP(+Q)            bit-serial saturating adds, layer-gated B-mux
//   min over i            dim exchanges along action dims + bit-serial
//                         compare/select, argmin bits carried alongside
// Layer control (#S == j) runs in either of the paper's two styles
// (propagation of the first kind, or popcount) — bench E14.
//
// The machine's instruction count is the paper's T_par: measured, not
// modeled; bench E9 fits it against O(k·p·(k + log N)).
#pragma once

#include <algorithm>

#include "bvm/machine.hpp"
#include "bvm/microcode/arith.hpp"
#include "bvm/microcode/layer.hpp"
#include "tt/solver.hpp"
#include "util/fixed.hpp"

namespace ttp::tt {

/// Register-row allocation of the TT microprogram (public so recorded
/// programs can be replayed against externally loaded data, and so the
/// budget is auditable against the machine's L = 256 rows).
struct TtRegisterMap {
  int dims, k, a, p;
  int frac;    // fractional bits of the fixed-point format
  int pid;     // [pid, pid+dims)
  int tmask;   // [tmask, tmask+k)
  int istest;  // 1 row
  int m, r, q, tp, x, muls;  // p rows each
  int wt, ct;                // p rows each
  int best, bx;              // a rows each
  int layerj, take, take2, lt, eq, ltb, ovf, tmp;  // 1 row each
  int layer_work;  // LayerControl workspace
  // Pipelined-wave workspace (claimed only with with_wave): per lateral
  // e-dim one adopt row for R and one for Q, plus two CUR scratch rows.
  int wave_span = 0;
  int wave_adr = 0, wave_adq = 0, wave_cur_r = 0, wave_cur_q = 0;
  int total;

  TtRegisterMap(int dims_, int k_, int a_, int p_, int frac_,
                bool with_wave = false)
      : dims(dims_), k(k_), a(a_), p(p_), frac(frac_) {
    int at = 0;
    auto claim = [&at](int n) {
      const int base = at;
      at += n;
      return base;
    };
    pid = claim(dims);
    tmask = claim(k);
    istest = claim(1);
    m = claim(p);
    r = claim(p);
    q = claim(p);
    tp = claim(p);
    x = claim(p);
    muls = claim(p);
    wt = claim(p);
    ct = claim(p);
    best = claim(a);
    bx = claim(a);
    layerj = claim(1);
    take = claim(1);
    take2 = claim(1);
    lt = claim(1);
    eq = claim(1);
    ltb = claim(1);
    ovf = claim(1);
    tmp = claim(1);
    layer_work = claim(bvm::LayerControl::workspace_size(k));
    if (with_wave) {
      const bvm::BvmConfig cfg = bvm::BvmConfig::for_dims(dims);
      wave_span = std::max(0, (a + k) - std::max(cfg.r, a));
      wave_adr = claim(wave_span);
      wave_adq = claim(wave_span);
      wave_cur_r = claim(1);
      wave_cur_q = claim(1);
    }
    total = at;
  }

  bvm::Field fM() const { return {m, p}; }
  bvm::Field fR() const { return {r, p}; }
  bvm::Field fQ() const { return {q, p}; }
  bvm::Field fTP() const { return {tp, p}; }
  bvm::Field fX() const { return {x, p}; }
  bvm::Field fMULS() const { return {muls, p}; }
  bvm::Field fWT() const { return {wt, p}; }
  bvm::Field fCT() const { return {ct, p}; }
  bvm::Field fBEST() const { return {best, a}; }
  bvm::Field fBX() const { return {bx, a}; }
  bvm::Field fPidLow() const { return {pid, a}; }
  bvm::Field fPidSet() const { return {pid + a, k}; }
};

struct BvmSolverOptions {
  util::Fixed::Format format{20, 6};  ///< p bits, fractional scaling
  bvm::LayerMode layer_mode = bvm::LayerMode::kPropagation;
  /// Generate processor-ID on the machine (paper's on-the-fly control
  /// bits); false = host DMA preload ("these control bits can be
  /// precalculated").
  bool on_machine_ids = true;
  /// Load per-action data through the serial I-chain instead of host DMA
  /// (faithful but n instructions per register row; keep for small runs).
  bool serial_io = false;
  /// Run the e-loop's lateral dimensions as one Preparata-Vuillemin
  /// pipelined wave per pass instead of one rotation lap per dimension —
  /// the realization the paper's T = O(k·p·(k+log N)) bound assumes.
  /// Results are identical; bench E9/E13 quantify the saving.
  bool pipelined_laterals = false;
  /// When set, every executed instruction is appended here. The BVM is
  /// SIMD: the stream is static given (k, N, p, weights, layer mode), so
  /// the recording can be replayed on a fresh machine against different
  /// action data loaded at the TtRegisterMap rows (see the replay test).
  std::vector<bvm::Instr>* record_program = nullptr;
};

class BvmSolver {
 public:
  explicit BvmSolver(BvmSolverOptions opt = {}) : opt_(opt) {}

  /// Solves on a simulated BVM sized BvmConfig::for_dims(k + ceil_log2 N).
  /// Table costs are the fixed-point values converted to double (quantized;
  /// integer-cost instances with format.frac == 0 reproduce the sequential
  /// solver exactly). steps.parallel_steps = executed BVM instructions.
  SolveResult solve(const Instance& ins) const;

  /// Register budget the microprogram needs for an instance; must be within
  /// the machine's L = 256 rows.
  static int registers_needed(const Instance& ins, int value_bits);

 private:
  BvmSolverOptions opt_;
};

}  // namespace ttp::tt
