#include "tt/solver_threads.hpp"

#include "obs/trace.hpp"
#include "tt/solver_sequential.hpp"

namespace ttp::tt {

SolveResult ThreadsSolver::solve(const Instance& ins) const {
  ins.check();
  SolveResult res;
  const int k = ins.k();
  const int N = ins.num_actions();
  const std::size_t states = std::size_t{1} << k;
  const std::vector<double>& wt = ins.subset_weight_table();

  TTP_TRACE_SPAN(root_span, "solve.threads", res.steps);
  root_span.attr("k", k);
  root_span.attr("workers", pool_.size());
  root_span.attr("mode", mode_ == Mode::kStateParallel ? "state_parallel"
                                                       : "pair_parallel");

  res.table.k = k;
  res.table.cost.assign(states, kInf);
  res.table.best_action.assign(states, -1);
  res.table.cost[0] = 0.0;

  std::vector<double> m_buffer;
  if (mode_ == Mode::kPairParallel) {
    m_buffer.resize(states * static_cast<std::size_t>(N));
  }

  for (int j = 1; j <= k; ++j) {
    TTP_TRACE_SPAN(layer_span, "layer", res.steps);
    layer_span.attr("j", j);
    const std::vector<Mask> layer = util::layer_subsets(k, j);
    layer_span.attr("states", static_cast<std::uint64_t>(layer.size()));
    if (mode_ == Mode::kStateParallel) {
      // Reads touch only layers < j (finalized); writes per-state disjoint.
      pool_.parallel_for(layer.size(), [&](std::size_t b, std::size_t e) {
        for (std::size_t idx = b; idx < e; ++idx) {
          const Mask s = layer[idx];
          double best = kInf;
          int arg = -1;
          for (int i = 0; i < N; ++i) {
            const double v = action_value(ins, res.table.cost, wt, s, i);
            if (v < best) {
              best = v;
              arg = i;
            }
          }
          res.table.cost[s] = best;
          res.table.best_action[s] = arg;
        }
      });
    } else {
      // Phase 1: every (S, i) pair independently, like the paper's PEs.
      const std::size_t pairs = layer.size() * static_cast<std::size_t>(N);
      pool_.parallel_for(pairs, [&](std::size_t b, std::size_t e) {
        for (std::size_t idx = b; idx < e; ++idx) {
          const Mask s = layer[idx / static_cast<std::size_t>(N)];
          const int i = static_cast<int>(idx % static_cast<std::size_t>(N));
          m_buffer[static_cast<std::size_t>(s) * N + i] =
              action_value(ins, res.table.cost, wt, s, i);
        }
      });
      // Phase 2: per-state minimization (ascending i: identical ties).
      pool_.parallel_for(layer.size(), [&](std::size_t b, std::size_t e) {
        for (std::size_t idx = b; idx < e; ++idx) {
          const Mask s = layer[idx];
          double best = kInf;
          int arg = -1;
          for (int i = 0; i < N; ++i) {
            const double v = m_buffer[static_cast<std::size_t>(s) * N + i];
            if (v < best) {
              best = v;
              arg = i;
            }
          }
          res.table.cost[s] = best;
          res.table.best_action[s] = arg;
        }
      });
    }
    const std::uint64_t rounds =
        (layer.size() + pool_.size() - 1) / pool_.size();
    for (std::uint64_t r = 0; r < rounds; ++r) {
      res.steps.step(static_cast<std::uint64_t>(N) * pool_.size());
    }
  }

  res.cost = res.table.root_cost();
  res.tree = reconstruct_tree(ins, res.table);
  return res;
}

}  // namespace ttp::tt
