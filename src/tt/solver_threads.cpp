#include "tt/solver_threads.hpp"

#include <cassert>

#include "obs/trace.hpp"
#include "tt/kernel.hpp"

namespace ttp::tt {

namespace {

/// Debug-only enforcement of the header's single-caller contract: the
/// shared arena makes concurrent solve() calls on one object a data race.
class [[maybe_unused]] ArenaGuard {
 public:
  explicit ArenaGuard(std::atomic<bool>& flag) : flag_(flag) {
#ifndef NDEBUG
    const bool was = flag_.exchange(true, std::memory_order_acq_rel);
    assert(!was &&
           "ThreadsSolver::solve is single-caller: concurrent calls race on "
           "the shared SolveArena");
#endif
  }
  ~ArenaGuard() {
#ifndef NDEBUG
    flag_.store(false, std::memory_order_release);
#endif
  }

 private:
  [[maybe_unused]] std::atomic<bool>& flag_;
};

}  // namespace

SolveResult ThreadsSolver::solve(const Instance& ins) const {
  const ArenaGuard guard(in_solve_);
  ins.check();
  SolveResult res;
  const int k = ins.k();
  const int N = ins.num_actions();
  const std::size_t states = std::size_t{1} << k;
  const std::vector<double>& wt = ins.subset_weight_table();
  const std::uint64_t width = pool_.size();

  TTP_TRACE_SPAN(root_span, "solve.threads", res.steps);
  root_span.attr("k", k);
  root_span.attr("workers", pool_.size());
  root_span.attr("mode", mode_ == Mode::kStateParallel ? "state_parallel"
                                                       : "pair_parallel");
  root_span.attr("kernel", active_kernel_variant_name());

  const LayerIndex& layers = arena_.layers(k);
  const ActionSoA& soa = arena_.actions(ins);
  // Precomputed gather indices (reused across solves with the same action
  // structure); the scalar variant never reads them, and past
  // kPairIndexHotBytes the index loads cost more than the in-register ANDs
  // they replace (see kernel.hpp), so both cases skip the build.
  const bool want_ctx =
      active_kernel_variant() != KernelVariant::kScalar &&
      states * static_cast<std::size_t>(N) * 2 * sizeof(std::uint32_t) <=
          kPairIndexHotBytes;
  const PairIndex* pidx = want_ctx ? arena_.pair_index() : nullptr;
  arena_.prepare_tables(states);
  double* cost = arena_.cost();
  int* best = arena_.best();
  const double* wtp = wt.data();

  for (int j = 1; j <= k; ++j) {
    TTP_TRACE_SPAN(layer_span, "layer", res.steps);
    layer_span.attr("j", j);
    const std::span<const Mask> layer = layers.layer(j);
    const std::size_t n = layer.size();
    layer_span.attr("states", static_cast<std::uint64_t>(n));
    if (mode_ == Mode::kStateParallel) {
      // Reads touch only layers < j (finalized); writes per-state disjoint.
      pool_.parallel_for(n, [&](std::size_t b, std::size_t e) {
        KernelCtx ctx;
        if (pidx != nullptr) {
          ctx.inter = pidx->inter_row(j, 0);
          ctx.minus = pidx->minus_row(j, 0);
          ctx.stride = pidx->stride(j);
          ctx.base = b;
        }
        eval_states(soa, wtp, layer.data() + b, e - b, cost, best,
                    pidx != nullptr ? &ctx : nullptr);
      });
    } else {
      // Phase 1: every (S, i) pair independently, like the paper's PEs.
      const std::size_t pairs = n * static_cast<std::size_t>(N);
      double* m = arena_.m_buffer(pairs);
      pool_.parallel_for(pairs, [&](std::size_t b, std::size_t e) {
        eval_pairs(soa, wtp, cost, layer.data(), b, e, m);
      });
      // Phase 2: per-state minimization (ascending i: identical ties).
      pool_.parallel_for(n, [&](std::size_t b, std::size_t e) {
        reduce_pairs(soa, m, layer.data(), b, e, cost, best);
      });
    }
    // Normative accounting (solver.hpp): ceil(n / width) W-wide rounds,
    // each one parallel step; total_ops counts the M-evaluations actually
    // performed — n·N, exactly the sequential count, partial final round
    // included.
    res.steps.charge((n + width - 1) / width,
                     static_cast<std::uint64_t>(n) * N);
  }

  res.table.k = k;
  res.table.cost.assign(arena_.cost(), arena_.cost() + states);
  res.table.best_action.assign(arena_.best(), arena_.best() + states);
  res.cost = res.table.root_cost();
  res.tree = reconstruct_tree(ins, res.table);
  res.breakdown.add("m_evaluations", res.steps.total_ops);
  return res;
}

}  // namespace ttp::tt
