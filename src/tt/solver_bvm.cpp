#include "tt/solver_bvm.hpp"

#include <cmath>
#include <stdexcept>

#include "bvm/io.hpp"
#include "bvm/microcode/arith.hpp"
#include "bvm/microcode/exchange.hpp"
#include "bvm/microcode/ids.hpp"
#include "obs/trace.hpp"
#include "tt/solver_hypercube.hpp"

namespace ttp::tt {

namespace {

using bvm::Field;
using bvm::Machine;
using bvm::Reg;

// Loads one register row from a per-PE bit function, via DMA or the serial
// I-chain depending on options.
template <typename Fn>
void load_row(Machine& m, bool serial, Reg dst, Fn&& bit_of_pe) {
  std::vector<bool> bits(m.num_pes());
  for (std::size_t pe = 0; pe < bits.size(); ++pe) bits[pe] = bit_of_pe(pe);
  if (serial) {
    bvm::load_register_serial(m, dst, bits);
  } else {
    bvm::load_register_host(m, dst, bits);
  }
}

}  // namespace

int BvmSolver::registers_needed(const Instance& ins, int value_bits) {
  const int a = HypercubeSolver::action_dims(ins);
  // Worst-case fractional width for budgeting: half the value bits.
  return TtRegisterMap(ins.k() + a, ins.k(), a, value_bits, value_bits / 2)
      .total;
}

SolveResult BvmSolver::solve(const Instance& ins) const {
  ins.check();
  const int k = ins.k();
  const int N = ins.num_actions();
  const int a = HypercubeSolver::action_dims(ins);
  const int npad = 1 << a;
  const int dims = k + a;
  const util::Fixed::Format fmt = opt_.format;
  const int p = fmt.bits;
  if (p < 4 || p > 60) {
    throw std::invalid_argument("BvmSolver: value bits out of range");
  }

  const bvm::BvmConfig cfg = bvm::BvmConfig::for_dims(dims);
  const TtRegisterMap rm(dims, k, a, p, fmt.frac, opt_.pipelined_laterals);
  if (rm.total > cfg.regs) {
    throw std::invalid_argument(
        "BvmSolver: register budget exceeds the machine's L rows");
  }

  Machine mach(cfg);
  if (opt_.record_program != nullptr) mach.set_recorder(opt_.record_program);
  SolveResult res;

  TTP_TRACE_SPAN(root_span, "solve.bvm", mach.instr_counter());
  root_span.attr("k", k);
  root_span.attr("dims", dims);
  root_span.attr("pes", mach.num_pes());
  root_span.attr("value_bits", p);

  auto count_phase = [&, last = std::uint64_t{0}](const char* name) mutable {
    const std::uint64_t now = mach.instr_count();
    res.breakdown.add(name, now - last);
    last = now;
  };

  // --- Processor-ID: on the fly or precalculated (both sanctioned). ---
  TTP_TRACE_SPAN(ids_span, "phase.init_ids", mach.instr_counter());
  if (opt_.on_machine_ids) {
    bvm::gen_processor_id(mach, rm.pid, rm.take, rm.tmp);
  } else {
    bvm::load_processor_id_host(mach, rm.pid);
  }
  ids_span.finish();
  count_phase("init_ids");

  // --- Per-action data: T_i membership bits, test flag, cost t_i. ---
  TTP_TRACE_SPAN(load_span, "phase.init_load", mach.instr_counter());
  auto action_of = [&](std::size_t pe) { return static_cast<int>(pe) & (npad - 1); };
  for (int e = 0; e < k; ++e) {
    load_row(mach, opt_.serial_io, Reg::R(rm.tmask + e), [&](std::size_t pe) {
      const int i = action_of(pe);
      const Mask t = i < N ? ins.action(i).set : ins.universe();
      return util::has_bit(t, e);
    });
  }
  load_row(mach, opt_.serial_io, Reg::R(rm.istest), [&](std::size_t pe) {
    const int i = action_of(pe);
    return i < N && ins.action(i).is_test;
  });
  for (int t = 0; t < p; ++t) {
    load_row(mach, opt_.serial_io, Reg::R(rm.ct + t), [&](std::size_t pe) {
      const int i = action_of(pe);
      const std::uint64_t raw =
          i < N ? util::Fixed::from_double(fmt, ins.action(i).cost).raw()
                : fmt.inf_raw();
      return ((raw >> t) & 1u) != 0;
    });
  }
  load_span.finish();
  count_phase("init_load");

  // --- WT = p(S) on the machine: sum of the weight constants of the
  //     objects whose PID set-bit is on. ---
  TTP_TRACE_SPAN(ps_span, "phase.init_ps", mach.instr_counter());
  set_const(mach, rm.fWT(), 0);
  for (int j = 0; j < k; ++j) {
    const std::uint64_t wraw = util::Fixed::from_double(fmt, ins.weight(j)).raw();
    // X = weight_j masked by membership bit (0 where bit j of S is 0).
    for (int t = 0; t < p; ++t) {
      if ((wraw >> t) & 1u) {
        mach.exec(bvm::mov(rm.fX().reg(t), Reg::R(rm.pid + a + j)));
      } else {
        mach.exec(bvm::setv(rm.fX().reg(t), false));
      }
    }
    add_sat(mach, rm.fWT(), rm.fWT(), rm.fX(), rm.tmp);
  }
  ps_span.finish();
  count_phase("init_ps");

  // --- TP = t_i * p(S); S = empty gives 0, pad actions give INF. Both
  //     operands carry `frac` fractional bits, so the product is shifted
  //     back down through a wide accumulator. ---
  TTP_TRACE_SPAN(tp_span, "phase.init_tp", mach.instr_counter());
  multiply_shift_sat(mach, rm.fTP(), rm.fCT(), rm.fWT(), fmt.frac,
                     rm.fMULS(), rm.ovf, rm.tmp);
  // INF cost times a sub-unit weight would come out finite under pure
  // fixed-point; pin TP to INF wherever the cost was the INF sentinel and
  // p(S) is nonzero, so infeasibility can never masquerade as a huge cost.
  equals_const(mach, rm.lt, rm.fCT(), fmt.inf_raw(), rm.tmp);
  equals_const(mach, rm.eq, rm.fWT(), 0, rm.tmp);
  mach.exec(bvm::binop(bvm::Reg::R(rm.take), bvm::kTtAndFNotD,
                       bvm::Reg::R(rm.lt), bvm::Reg::R(rm.eq)));
  or_bit_into(mach, rm.fTP(), rm.take);
  tp_span.finish();
  count_phase("init_tp");

  // --- M = INF except M[empty,i] = 0; BEST = own action index. ---
  TTP_TRACE_SPAN(m_span, "phase.init_m", mach.instr_counter());
  set_const(mach, rm.fM(), fmt.inf_raw());
  equals_const(mach, rm.eq, rm.fPidSet(), 0, rm.tmp);
  set_const(mach, rm.fX(), 0);
  select(mach, rm.fM(), rm.eq, rm.fX(), rm.fM());
  copy_field(mach, rm.fBEST(), rm.fPidLow());

  bvm::LayerControl layers(opt_.layer_mode, [&] {
    std::vector<int> sd(static_cast<std::size_t>(k));
    for (int e = 0; e < k; ++e) sd[static_cast<std::size_t>(e)] = a + e;
    return sd;
  }(), rm.pid, rm.layer_work);
  layers.init(mach);
  m_span.finish();
  count_phase("init_m");

  // --- The §6 layer loop. ---
  for (int j = 1; j <= k; ++j) {
    TTP_TRACE_SPAN(layer_span, "layer", mach.instr_counter());
    layer_span.attr("j", j);
    layers.advance(mach);
    mach.exec(bvm::mov(Reg::R(rm.layerj), Reg::R(layers.flag())));

    copy_field(mach, rm.fR(), rm.fM());
    copy_field(mach, rm.fQ(), rm.fM());

    // The e-loop. In-cycle set dimensions go one at a time; the lateral
    // ones either pay a rotation lap each (the paper's cost claim then
    // carries an extra Q factor) or share one pipelined wave.
    const int lateral_e0 = std::max(0, cfg.r - a);
    const int e_end = opt_.pipelined_laterals ? lateral_e0 : k;
    for (int e = 0; e < e_end; ++e) {
      const int d = a + e;
      // R[S,i] = R[S-{e},i] where e in S∩T_i.
      bvm::dim_exchange_read(mach, d, rm.fR(), rm.fX(), rm.tmp);
      mach.exec(bvm::binop(Reg::R(rm.take), bvm::kTtAndFD,
                           Reg::R(rm.pid + d), Reg::R(rm.tmask + e)));
      select(mach, rm.fR(), rm.take, rm.fX(), rm.fR());
      // Q[S,i] = Q[S-{e},i] where e in S-T_i.
      bvm::dim_exchange_read(mach, d, rm.fQ(), rm.fX(), rm.tmp);
      mach.exec(bvm::binop(Reg::R(rm.take2), bvm::kTtAndFNotD,
                           Reg::R(rm.pid + d), Reg::R(rm.tmask + e)));
      select(mach, rm.fQ(), rm.take2, rm.fX(), rm.fQ());
    }
    if (opt_.pipelined_laterals && lateral_e0 < k) {
      // Adopt rows: receiver has the address bit set AND the membership
      // condition (e ∈ T_i for R, e ∉ T_i for Q).
      for (int e = lateral_e0; e < k; ++e) {
        const int d = a + e;
        const int q = d - cfg.r;
        const int slot = q - (a + lateral_e0 - cfg.r);
        mach.exec(bvm::binop(Reg::R(rm.wave_adr + slot), bvm::kTtAndFD,
                             Reg::R(rm.pid + d), Reg::R(rm.tmask + e)));
        mach.exec(bvm::binop(Reg::R(rm.wave_adq + slot), bvm::kTtAndFNotD,
                             Reg::R(rm.pid + d), Reg::R(rm.tmask + e)));
      }
      const int q_lo = a + lateral_e0 - cfg.r;
      const int q_hi = a + k - cfg.r;
      bvm::lateral_wave_ascend(
          mach, q_lo, q_hi,
          {bvm::WaveField{rm.fR(), rm.wave_adr - q_lo, rm.wave_cur_r},
           bvm::WaveField{rm.fQ(), rm.wave_adq - q_lo, rm.wave_cur_q}});
    }

    // M = R + TP (+ Q for tests) on layer-j PEs.
    copy_field(mach, rm.fX(), rm.fR());
    add_sat(mach, rm.fX(), rm.fX(), rm.fTP(), rm.tmp);
    // MULS = Q masked by the test flag (treatments add zero).
    for (int t = 0; t < p; ++t) {
      mach.exec(bvm::binop(rm.fMULS().reg(t), bvm::kTtAndFD, rm.fQ().reg(t),
                           Reg::R(rm.istest)));
    }
    add_sat(mach, rm.fX(), rm.fX(), rm.fMULS(), rm.tmp);
    select(mach, rm.fM(), rm.layerj, rm.fX(), rm.fM());
    select(mach, rm.fBEST(), rm.layerj, rm.fPidLow(), rm.fBEST());

    // ASCEND min over the action dimensions, argmin carried, ties to the
    // lower action index (lexicographic (M, best) minimum on both sides).
    for (int t = 0; t < a; ++t) {
      bvm::dim_exchange_read(mach, t, rm.fM(), rm.fX(), rm.tmp);
      bvm::dim_exchange_read(mach, t, rm.fBEST(), rm.fBX(), rm.tmp);
      less_than(mach, rm.lt, rm.fX(), rm.fM(), rm.tmp);
      equals_field(mach, rm.eq, rm.fX(), rm.fM(), rm.tmp);
      less_than(mach, rm.ltb, rm.fBX(), rm.fBEST(), rm.tmp);
      // take = (lt | (eq & ltb)) & layerj
      mach.exec(bvm::binop(Reg::R(rm.take), bvm::kTtAndFD, Reg::R(rm.eq),
                           Reg::R(rm.ltb)));
      mach.exec(bvm::binop(Reg::R(rm.take), bvm::kTtOrFD, Reg::R(rm.take),
                           Reg::R(rm.lt)));
      mach.exec(bvm::binop(Reg::R(rm.take), bvm::kTtAndFD, Reg::R(rm.take),
                           Reg::R(rm.layerj)));
      select(mach, rm.fM(), rm.take, rm.fX(), rm.fM());
      select(mach, rm.fBEST(), rm.take, rm.fBX(), rm.fBEST());
    }
  }
  count_phase("layers");

  // --- Host extraction from PE (S, 0). ---
  const std::size_t states = std::size_t{1} << k;
  res.table.k = k;
  res.table.cost.assign(states, kInf);
  res.table.best_action.assign(states, -1);
  res.table.cost[0] = 0.0;
  for (std::size_t s = 1; s < states; ++s) {
    const std::size_t pe = s << a;
    const std::uint64_t raw = mach.peek_value(rm.m, p, pe);
    const util::Fixed v(fmt, raw);
    res.table.cost[s] = v.is_inf() ? kInf : v.to_double();
    if (!v.is_inf()) {
      const int best = static_cast<int>(mach.peek_value(rm.best, a, pe));
      res.table.best_action[s] = best < N ? best : -1;
    }
  }

  res.steps.parallel_steps = mach.instr_count();
  res.steps.total_ops = mach.instr_count() * mach.num_pes();
  res.cost = res.table.root_cost();
  res.tree = reconstruct_tree(ins, res.table);
  res.breakdown.add("bvm_instructions", mach.instr_count());
  res.breakdown.add("bvm_pes", mach.num_pes());
  res.breakdown.add("bvm_registers", static_cast<std::uint64_t>(rm.total));
  res.breakdown.add("value_bits", static_cast<std::uint64_t>(p));
  return res;
}

}  // namespace ttp::tt
