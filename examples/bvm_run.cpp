// bvm_run — a command-line front end for the BVM simulator: assemble a
// program file in the paper's §2 syntax and run it on a chosen machine.
//
//   example_bvm_run                         # run an embedded demo program
//   example_bvm_run prog.bvm                # run a file on the default 64-PE
//   example_bvm_run prog.bvm --r=3 --h=8    # choose the machine shape
//   example_bvm_run prog.bvm --dump=0,1,2   # print register rows after run
//   example_bvm_run prog.bvm --trace        # disassemble as it executes
//   example_bvm_run prog.bvm --in=1011      # feed bits to the I-chain
//
// Exit code 0 on success; assembly/runtime errors report and exit 1.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bvm/assembler.hpp"
#include "bvm/machine.hpp"

namespace {

constexpr const char* kDemo = R"(# demo: ripple-add R[0..3] + R[4..7] -> R[8..11], carry via B
# clear the carry
R[12],B = f:0x00,g:0x00 (A, A, B)
# four ripple steps: sum = F^D^B, carry = maj(F,D,B)
R[8],B  = f:0x96,g:0xE8 (R[0], R[4], B)
R[9],B  = f:0x96,g:0xE8 (R[1], R[5], B)
R[10],B = f:0x96,g:0xE8 (R[2], R[6], B)
R[11],B = f:0x96,g:0xE8 (R[3], R[7], B)
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace ttp::bvm;
  std::string path;
  int r = 2, h = 4;
  bool trace = false;
  std::vector<int> dumps;
  std::string input_bits;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--r=", 0) == 0) {
      r = std::stoi(arg.substr(4));
    } else if (arg.rfind("--h=", 0) == 0) {
      h = std::stoi(arg.substr(4));
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg.rfind("--dump=", 0) == 0) {
      std::stringstream ss(arg.substr(7));
      std::string tok;
      while (std::getline(ss, tok, ',')) dumps.push_back(std::stoi(tok));
    } else if (arg.rfind("--in=", 0) == 0) {
      input_bits = arg.substr(5);
    } else if (arg == "--help") {
      std::cout << "usage: bvm_run [prog.bvm] [--r=R] [--h=H] [--trace] "
                   "[--dump=j,k,...] [--in=0101...]\n";
      return 0;
    } else {
      path = arg;
    }
  }

  try {
    std::string source;
    if (path.empty()) {
      source = kDemo;
      std::cout << "(no program given; running the embedded ripple-add "
                   "demo)\n";
    } else {
      std::ifstream is(path);
      if (!is) throw std::runtime_error("cannot open: " + path);
      std::ostringstream buf;
      buf << is.rdbuf();
      source = buf.str();
    }
    const auto prog = assemble(source);

    Machine m(BvmConfig{r, h, 256});
    std::cout << "machine: " << m.num_pes() << " PEs (r=" << r << ", h=" << h
              << "), program: " << prog.size() << " instructions\n";
    for (char c : input_bits) m.push_input(c == '1');

    if (path.empty()) {
      // Seed the demo's operands: per-PE values pe%13 and pe%9.
      for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
        m.poke_value(0, 4, pe, pe % 13);
        m.poke_value(4, 4, pe, pe % 9);
      }
      if (dumps.empty()) dumps = {8, 9, 10, 11};
    }
    if (trace) m.set_trace(&std::cout);
    m.run(prog);
    m.set_trace(nullptr);

    std::cout << "executed " << m.instr_count() << " instructions\n";
    for (int j : dumps) {
      std::cout << "R[" << j << "] = " << m.dump_row(Reg::R(j)) << '\n';
    }
    if (path.empty()) {
      // Verify the demo did what it claims.
      for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
        const auto expect = (pe % 13 + pe % 9) & 0xF;
        if (m.peek_value(8, 4, pe) != expect) {
          std::cerr << "demo verification FAILED at PE " << pe << '\n';
          return 1;
        }
      }
      std::cout << "demo verified: R[8..11] = R[0..3] + R[4..7] (mod 16) at "
                   "every PE\n";
    }
    if (!m.output().empty()) {
      std::cout << "output bits:";
      for (bool b : m.output()) std::cout << (b ? '1' : '0');
      std::cout << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
