// Laboratory analysis scenario (paper §1: "laboratory analysis"): identify
// an unknown substance with cheap screens, dear chromatography, and
// confirmation workups. Demonstrates the full workflow a lab planner would
// use: generate/solve, read the protocol statistics, probe robustness to
// prevalence shifts, save the instance for the CLI, and — when the problem
// has structure — solve it top-down without the 2^k sweep.
//
//   build/examples/example_lab_analysis
#include <iostream>

#include "tt/analysis.hpp"
#include "tt/generator.hpp"
#include "tt/report.hpp"
#include "tt/serialize.hpp"
#include "tt/solver_bnb.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ttp::tt;
  ttp::util::Rng rng(77);

  const Instance ins = lab_analysis_instance(8, rng);
  std::cout << describe(ins) << '\n';

  const auto opt = SequentialSolver().solve(ins);
  std::cout << "optimal assay protocol (expected cost " << opt.cost
            << "):\n"
            << opt.tree.to_string(ins) << '\n';

  // Protocol statistics a lab manager reads.
  const auto st = analyze(ins, opt.tree);
  std::cout << st.to_string(ins);
  std::cout << "worst-case single-sample bill: "
            << worst_case_cost(ins, opt.tree) << "\n\n";

  // Robustness: what if substance 0 became 5x more prevalent?
  std::vector<double> shifted = ins.weights();
  shifted[0] *= 5.0;
  const double stale = expected_cost_under(ins, opt.tree, shifted);
  Instance shifted_ins(ins.k(), shifted);
  for (const Action& a : ins.actions()) {
    if (a.is_test) {
      shifted_ins.add_test(a.set, a.cost, a.name);
    } else {
      shifted_ins.add_treatment(a.set, a.cost, a.name);
    }
  }
  const auto reopt = SequentialSolver().solve(shifted_ins);
  std::cout << "prevalence shift (substance 0 x5): stale protocol costs "
            << stale << ", re-optimized " << reopt.cost << " ("
            << (stale / reopt.cost - 1.0) * 100.0 << "% penalty for not "
            << "re-planning)\n\n";

  // Top-down solve: how much of the state space did this instance need?
  const auto bnb = BnbSolver().solve(ins);
  std::cout << "branch-and-bound visited "
            << bnb.breakdown.get("visited_states") << " of "
            << (std::size_t{1} << ins.k()) << " states ("
            << bnb.breakdown.get("pruned_actions")
            << " actions pruned), same optimum: "
            << (bnb.cost == opt.cost ? "yes" : "NO") << "\n\n";

  // Persist the instance for the ttp_solve CLI.
  const std::string path = "/tmp/lab_analysis_example.tt";
  save_file(path, ins);
  std::cout << "instance written to " << path
            << " (try: example_ttp_solve " << path << " --solver=bvm)\n";
  return bnb.cost == opt.cost ? 0 : 1;
}
