// Quickstart: define a small test-and-treatment problem, solve it with the
// sequential DP and the paper's parallel algorithm, print the optimal
// procedure tree (the shape of the paper's Fig. 1) and the machine costs.
//
//   build/examples/example_quickstart
#include <iostream>

#include "tt/instance.hpp"
#include "tt/report.hpp"
#include "tt/solver_hypercube.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/validate.hpp"

int main() {
  using namespace ttp::tt;

  // Four possible faults with prior likelihoods 0.4/0.3/0.2/0.1, two tests
  // that split the candidates, three treatments of different breadth.
  Instance ins = fig1_example();
  std::cout << describe(ins) << '\n';

  // Sequential backward induction (the baseline the paper speeds up).
  SequentialSolver seq;
  const SolveResult s = seq.solve(ins);
  print_result(std::cout, ins, s, "sequential DP");

  // The paper's parallel algorithm: one PE per (S, i) pair, ASCEND/DESCEND
  // communication. Identical table, counted in parallel machine steps.
  HypercubeSolver par;
  const SolveResult h = par.solve(ins);
  print_result(std::cout, ins, h, "\nparallel (hypercube, word-level)");

  // Sanity: the tree really is a successful procedure of the stated cost.
  const ValidationReport rep = validate_tree(ins, s.tree, s.cost);
  std::cout << "\nvalidation: " << (rep.ok ? "OK" : "FAILED") << '\n';
  if (!rep.ok) {
    for (const auto& e : rep.errors) std::cout << "  " << e << '\n';
    return 1;
  }
  return 0;
}
