// ttp_solve — command-line solver for TT instance files.
//
//   example_ttp_solve                         # solve an embedded sample
//   example_ttp_solve problem.tt              # solve a file
//   example_ttp_solve problem.tt --solver=bvm # sequential|threads|
//                                             #   hypercube|ccc|bvm
//   example_ttp_solve problem.tt --dot        # emit Graphviz instead
//   example_ttp_solve problem.tt --protocol   # numbered field protocol
//
// File format: see src/tt/serialize.hpp.
#include <iostream>
#include <string>

#include "tt/protocol.hpp"
#include "tt/report.hpp"
#include "tt/serialize.hpp"
#include "tt/solver_bvm.hpp"
#include "tt/solver_ccc.hpp"
#include "tt/solver_hypercube.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/solver_threads.hpp"

namespace {

constexpr const char* kSample = R"(# embedded sample: 4 faults, 2 tests, 3 cures
tt 4
weights 0.4 0.3 0.2 0.1
test  testAB {0,1} 1.0
test  testAC {0,2} 1.5
treat cureA  {0}   2.0
treat cureBC {1,2} 3.0
treat cureCD {2,3} 2.5
)";

ttp::tt::SolveResult run(const std::string& solver,
                         const ttp::tt::Instance& ins) {
  using namespace ttp::tt;
  if (solver == "sequential") return SequentialSolver().solve(ins);
  if (solver == "threads") return ThreadsSolver().solve(ins);
  if (solver == "hypercube") return HypercubeSolver().solve(ins);
  if (solver == "ccc") return CccSolver().solve(ins);
  if (solver == "bvm") return BvmSolver().solve(ins);
  throw std::invalid_argument("unknown solver: " + solver +
                              " (sequential|threads|hypercube|ccc|bvm)");
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string solver = "sequential";
  bool dot = false;
  bool protocol = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--solver=", 0) == 0) {
      solver = arg.substr(9);
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--protocol") {
      protocol = true;
    } else if (arg == "--help") {
      std::cout << "usage: ttp_solve [file.tt] [--solver=NAME] [--dot] "
                   "[--protocol]\n"
                   "tracing: set TTP_TRACE=summary|spans|chrome:<path>|"
                   "jsonl:<path>\n"
                   "  (chrome: output opens in chrome://tracing or "
                   "ui.perfetto.dev; see docs/observability.md)\n";
      return 0;
    } else {
      path = arg;
    }
  }
  try {
    const ttp::tt::Instance ins =
        path.empty() ? ttp::tt::from_text(kSample) : ttp::tt::load_file(path);
    const auto res = run(solver, ins);
    if (dot) {
      std::cout << res.tree.to_dot(ins);
      return 0;
    }
    if (protocol) {
      std::cout << ttp::tt::render_protocol(ins, res.tree);
      return 0;
    }
    std::cout << ttp::tt::describe(ins) << '\n';
    ttp::tt::print_result(std::cout, ins, res, "solver '" + solver + "'");
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
