// ttp_solve — command-line solver for TT instance files.
//
//   example_ttp_solve                         # solve an embedded sample
//   example_ttp_solve a.tt b.tt a.tt          # solve files via the serving
//                                             #   layer (repeats hit cache)
//   example_ttp_solve problem.tt --solver=bvm # svc|sequential|threads|
//                                             #   hypercube|ccc|bvm
//   example_ttp_solve problem.tt --dot        # emit Graphviz instead
//   example_ttp_solve problem.tt --protocol   # numbered field protocol
//
// The default solver is "svc": every file routes through svc::Service
// (canonical keying -> procedure cache -> singleflight scheduler -> batched
// kernel), and each solve prints `cache: hit|miss|inflight`, so passing the
// same file twice demonstrates the serving layer deduplicating work. The
// named single-backend solvers bypass the service.
//
// File format: see src/tt/serialize.hpp.
#include <iostream>
#include <string>
#include <vector>

#include "svc/service.hpp"
#include "tt/protocol.hpp"
#include "tt/report.hpp"
#include "tt/serialize.hpp"
#include "tt/solver_bvm.hpp"
#include "tt/solver_ccc.hpp"
#include "tt/solver_hypercube.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/solver_threads.hpp"

namespace {

constexpr const char* kSample = R"(# embedded sample: 4 faults, 2 tests, 3 cures
tt 4
weights 0.4 0.3 0.2 0.1
test  testAB {0,1} 1.0
test  testAC {0,2} 1.5
treat cureA  {0}   2.0
treat cureBC {1,2} 3.0
treat cureCD {2,3} 2.5
)";

ttp::tt::SolveResult run(const std::string& solver,
                         const ttp::tt::Instance& ins) {
  using namespace ttp::tt;
  if (solver == "sequential") return SequentialSolver().solve(ins);
  if (solver == "threads") return ThreadsSolver().solve(ins);
  if (solver == "hypercube") return HypercubeSolver().solve(ins);
  if (solver == "ccc") return CccSolver().solve(ins);
  if (solver == "bvm") return BvmSolver().solve(ins);
  throw std::invalid_argument("unknown solver: " + solver +
                              " (svc|sequential|threads|hypercube|ccc|bvm)");
}

int emit(const ttp::tt::Instance& ins, const ttp::tt::Tree& tree, bool dot,
         bool protocol) {
  if (dot) {
    std::cout << tree.to_dot(ins);
    return 0;
  }
  if (protocol) {
    std::cout << ttp::tt::render_protocol(ins, tree);
    return 0;
  }
  return -1;  // caller prints its own summary
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string solver = "svc";
  bool dot = false;
  bool protocol = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--solver=", 0) == 0) {
      solver = arg.substr(9);
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--protocol") {
      protocol = true;
    } else if (arg == "--help") {
      std::cout << "usage: ttp_solve [file.tt ...] [--solver=NAME] [--dot] "
                   "[--protocol]\n"
                   "default solver 'svc' routes through the serving layer "
                   "(repeated files hit the cache);\n"
                   "named backends: sequential|threads|hypercube|ccc|bvm\n"
                   "tracing: set TTP_TRACE=summary|spans|chrome:<path>|"
                   "jsonl:<path>\n"
                   "  (chrome: output opens in chrome://tracing or "
                   "ui.perfetto.dev; see docs/observability.md)\n";
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  try {
    std::vector<ttp::tt::Instance> instances;
    if (paths.empty()) {
      instances.push_back(ttp::tt::from_text(kSample));
      paths.push_back("<sample>");
    } else {
      for (const std::string& p : paths) {
        instances.push_back(ttp::tt::load_file(p));
      }
    }

    if (solver != "svc") {
      for (std::size_t i = 0; i < instances.size(); ++i) {
        const auto res = run(solver, instances[i]);
        if (emit(instances[i], res.tree, dot, protocol) == 0) continue;
        std::cout << ttp::tt::describe(instances[i]) << '\n';
        ttp::tt::print_result(std::cout, instances[i], res,
                              "solver '" + solver + "'");
      }
      return 0;
    }

    ttp::svc::Service service;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const ttp::svc::Response res = service.solve(instances[i]);
      if (!res.ok()) {
        std::cerr << "error: " << paths[i] << ": "
                  << ttp::svc::status_name(res.status) << ": " << res.error
                  << '\n';
        return 1;
      }
      if (emit(instances[i], res.tree, dot, protocol) == 0) continue;
      std::cout << "== " << paths[i] << " ==\n"
                << "cache: " << ttp::svc::cache_outcome_name(res.cache)
                << '\n'
                << ttp::tt::describe(instances[i]) << '\n'
                << "expected cost: " << res.cost << '\n'
                << res.tree.to_string(instances[i]) << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
