// Medical diagnosis scenario (the paper's motivating application): diseases
// with Zipf-like prevalence, symptom-panel tests, narrow cures and
// broad-spectrum treatments. Compares the optimal DP procedure against two
// greedy clinician-style policies.
//
//   build/examples/example_medical_diagnosis
#include <iomanip>
#include <iostream>

#include "tt/generator.hpp"
#include "tt/greedy.hpp"
#include "tt/report.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace ttp::tt;
  ttp::util::Rng rng(2026);

  ttp::util::Table table({"diseases", "optimal", "balanced-greedy",
                          "cheapest-first", "greedy penalty"});
  for (int k = 4; k <= 9; ++k) {
    const Instance ins = medical_instance(k, k + 2, rng);
    const auto opt = SequentialSolver().solve(ins);
    const auto g1 = greedy_solve(ins, GreedyRule::kBalancedSplit);
    const auto g2 = greedy_solve(ins, GreedyRule::kCheapestFirst);
    const double best_greedy = std::min(g1.cost, g2.cost);
    table.add_row({std::to_string(k), ttp::util::Table::num(opt.cost, 4),
                   ttp::util::Table::num(g1.cost, 4),
                   ttp::util::Table::num(g2.cost, 4),
                   ttp::util::Table::num(best_greedy / opt.cost, 3) + "x"});
  }
  std::cout << "Expected diagnosis-and-treatment cost per patient cohort\n";
  table.print(std::cout);

  // Show one concrete optimal protocol.
  const Instance ins = medical_instance(5, 6, rng);
  const auto opt = SequentialSolver().solve(ins);
  std::cout << '\n' << describe(ins) << '\n';
  std::cout << "optimal protocol (expected cost " << opt.cost << "):\n"
            << opt.tree.to_string(ins);
  return 0;
}
