// Systematic biology (paper §1: identification keys): taxa are identified
// by observing binary characters (tests) and confirmed by a final check
// (treatment). The optimal TT procedure is the cheapest identification key.
// Demonstrates adequacy checking and the effect of character costs on key
// shape.
//
//   build/examples/example_biology_key
#include <iostream>

#include "tt/generator.hpp"
#include "tt/report.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/validate.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ttp::tt;
  ttp::util::Rng rng(11);

  const Instance ins = biology_key_instance(7, rng);
  std::cout << describe(ins) << '\n';

  const auto opt = SequentialSolver().solve(ins);
  print_result(std::cout, ins, opt, "optimal identification key");

  // Keys must identify every specimen: per-taxon walk costs.
  std::cout << "\nper-taxon identification cost:\n";
  for (int taxon = 0; taxon < ins.k(); ++taxon) {
    std::cout << "  taxon " << taxon << ": "
              << opt.tree.path_cost(ins, taxon) << '\n';
  }

  // What if dissection characters tripled in cost? Rebuild and re-solve.
  Instance dear(ins.k(), ins.weights());
  for (int i = 0; i < ins.num_actions(); ++i) {
    const Action& a = ins.action(i);
    if (a.is_test) {
      dear.add_test(a.set, a.cost >= 3.0 ? a.cost * 3.0 : a.cost, a.name);
    } else {
      dear.add_treatment(a.set, a.cost, a.name);
    }
  }
  const auto opt2 = SequentialSolver().solve(dear);
  std::cout << "\nwith dissection characters 3x dearer: cost " << opt.cost
            << " -> " << opt2.cost << ", depth " << opt.tree.depth() << " -> "
            << opt2.tree.depth() << '\n';
  return 0;
}
