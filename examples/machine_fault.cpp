// Machine fault location and correction (paper §1: "computer system fault
// location and correction"): bisection probes over a module tree, per-module
// swaps vs whole-board replacements. Shows how the optimal procedure mixes
// testing and treating, and runs the same problem end-to-end on the
// simulated Boolean Vector Machine.
//
//   build/examples/example_machine_fault
#include <iostream>

#include "tt/generator.hpp"
#include "tt/report.hpp"
#include "tt/solver_bvm.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ttp::tt;
  ttp::util::Rng rng(7);

  const Instance ins = machine_fault_instance(6, rng);
  std::cout << describe(ins) << '\n';

  const auto opt = SequentialSolver().solve(ins);
  print_result(std::cout, ins, opt, "optimal repair procedure (host DP)");

  // The same problem on the bit-serial BVM simulator: every value is a
  // 22-bit fixed-point register group, every move a Boolean instruction.
  BvmSolverOptions bopt;
  bopt.format = ttp::util::Fixed::Format{22, 8};
  const auto bvm = BvmSolver(bopt).solve(ins);
  std::cout << "\nBVM run: C(U) = " << bvm.cost << " (host DP: " << opt.cost
            << ")\n";
  std::cout << "BVM instructions executed: "
            << bvm.breakdown.get("bvm_instructions") << " on "
            << bvm.breakdown.get("bvm_pes") << " PEs using "
            << bvm.breakdown.get("bvm_registers") << "/256 registers\n";
  for (const char* phase :
       {"init_ids", "init_load", "init_ps", "init_tp", "init_m", "layers"}) {
    std::cout << "  " << phase << ": " << bvm.breakdown.get(phase)
              << " instructions\n";
  }

  // Trees agree (quantization permitting).
  std::cout << "\nBVM-reconstructed procedure:\n" << bvm.tree.to_string(ins);
  return 0;
}
