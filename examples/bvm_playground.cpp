// A tour of the Boolean Vector Machine itself: assemble a program in the
// paper's §2 syntax, run it, generate control bits on the fly (cycle-ID,
// processor-ID), and do bit-serial arithmetic — everything the TT program
// is built from.
//
//   build/examples/example_bvm_playground
#include <iostream>

#include "bvm/assembler.hpp"
#include "bvm/io.hpp"
#include "bvm/microcode/arith.hpp"
#include "bvm/microcode/ids.hpp"
#include "util/bits.hpp"

int main() {
  using namespace ttp::bvm;

  // The paper's Fig. 3 machine: complete CCC with 64 PEs (16 cycles of 4).
  Machine m(BvmConfig::complete(2));
  std::cout << "machine: " << m.num_pes() << " PEs, cycles of "
            << m.config().Q() << ", " << m.config().regs << " registers\n\n";

  // 1. Assemble and run a program in the paper's instruction syntax:
  //    R[2] = R[0] XOR R[1] on even in-cycle positions only.
  const auto prog = assemble(R"(
# xor on even positions
R[2],B = f:0x66,g:0xF0 (R[0], R[1], B) IF {0,2}
)");
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    m.poke(Reg::R(0), pe, pe % 3 == 0);
    m.poke(Reg::R(1), pe, pe % 2 == 0);
  }
  m.run(prog);
  std::cout << "assembled: " << disassemble(prog);

  // 2. Generate the cycle-ID on the machine and print Fig. 3's table.
  gen_cycle_number(m, 10, 30, 31);
  gen_cycle_id(m, 20, 10);
  std::cout << "\ncycle-ID (paper Fig. 3): rows = cycles, cols = positions\n";
  for (std::size_t c = 0; c < m.config().num_cycles(); ++c) {
    std::cout << "  cycle " << (c < 10 ? " " : "") << c << ": ";
    for (int p = 0; p < m.config().Q(); ++p) {
      std::cout << (m.peek(Reg::R(20), m.addr(c, p)) ? '1' : '0');
    }
    std::cout << '\n';
  }

  // 3. Bit-serial arithmetic: every PE computes pe + 2*pe in an 8-bit field.
  Field x{40, 8}, y{48, 8}, z{56, 8};
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    m.poke_value(x.base, 8, pe, pe);
    m.poke_value(y.base, 8, pe, 2 * pe % 200);
  }
  const auto before = m.instr_count();
  add_sat(m, z, x, y, 64);
  std::cout << "\n8-bit saturating add across all 64 PEs took "
            << (m.instr_count() - before)
            << " instructions (2p+1, carries ride in register B)\n";
  std::cout << "PE 13: " << m.peek_value(x.base, 8, 13) << " + "
            << m.peek_value(y.base, 8, 13) << " = "
            << m.peek_value(z.base, 8, 13) << '\n';

  // 4. The serial I-chain: load a pattern one bit per instruction.
  std::vector<bool> bits(m.num_pes());
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = (i % 5) == 0;
  const auto io_before = m.instr_count();
  load_register_serial(m, Reg::R(70), bits);
  std::cout << "\nserial load of one register row: "
            << (m.instr_count() - io_before) << " instructions (n + 1)\n";
  return 0;
}
