// Logistical system breakdown correction (paper §1: "logistical system
// breakdown correction ... whenever a sizable population of complex objects
// (people, ships, computers) must be maintained at reasonable cost"):
// status queries over route segments, repair crews over depot blocks.
// Produces the dispatcher's numbered protocol and the per-subsystem costs.
//
//   build/examples/example_logistics
#include <iostream>

#include "tt/analysis.hpp"
#include "tt/generator.hpp"
#include "tt/protocol.hpp"
#include "tt/report.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ttp::tt;
  ttp::util::Rng rng(9);

  const Instance ins = logistics_instance(8, rng);
  std::cout << describe(ins) << '\n';

  const auto opt = SequentialSolver().solve(ins);

  // The dispatcher's wall chart.
  ProtocolOptions popt;
  for (int j = 0; j < ins.k(); ++j) {
    popt.object_names.push_back("depot-" + std::to_string(j));
  }
  std::cout << render_protocol(ins, opt.tree, popt) << '\n';

  // Where the budget goes.
  const auto st = analyze(ins, opt.tree);
  std::cout << "expected actions per incident: " << st.expected_tests
            << " queries + " << st.expected_treatments << " crew dispatches\n";
  std::cout << "worst-case incident bill: " << worst_case_cost(ins, opt.tree)
            << " (expected " << opt.cost << ")\n";
  double query_share = 0, crew_share = 0;
  for (const auto& [i, share] : st.action_share) {
    (ins.action(i).is_test ? query_share : crew_share) += share;
  }
  std::cout << "budget split: " << query_share << " on status queries, "
            << crew_share << " on crews\n";
  return 0;
}
