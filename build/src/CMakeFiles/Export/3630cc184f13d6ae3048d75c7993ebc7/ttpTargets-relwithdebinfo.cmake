#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "ttp::ttp_util" for configuration "RelWithDebInfo"
set_property(TARGET ttp::ttp_util APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ttp::ttp_util PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libttp_util.a"
  )

list(APPEND _cmake_import_check_targets ttp::ttp_util )
list(APPEND _cmake_import_check_files_for_ttp::ttp_util "${_IMPORT_PREFIX}/lib/libttp_util.a" )

# Import target "ttp::ttp_net" for configuration "RelWithDebInfo"
set_property(TARGET ttp::ttp_net APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ttp::ttp_net PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libttp_net.a"
  )

list(APPEND _cmake_import_check_targets ttp::ttp_net )
list(APPEND _cmake_import_check_files_for_ttp::ttp_net "${_IMPORT_PREFIX}/lib/libttp_net.a" )

# Import target "ttp::ttp_bvm" for configuration "RelWithDebInfo"
set_property(TARGET ttp::ttp_bvm APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ttp::ttp_bvm PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libttp_bvm.a"
  )

list(APPEND _cmake_import_check_targets ttp::ttp_bvm )
list(APPEND _cmake_import_check_files_for_ttp::ttp_bvm "${_IMPORT_PREFIX}/lib/libttp_bvm.a" )

# Import target "ttp::ttp_tt" for configuration "RelWithDebInfo"
set_property(TARGET ttp::ttp_tt APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ttp::ttp_tt PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libttp_tt.a"
  )

list(APPEND _cmake_import_check_targets ttp::ttp_tt )
list(APPEND _cmake_import_check_files_for_ttp::ttp_tt "${_IMPORT_PREFIX}/lib/libttp_tt.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
