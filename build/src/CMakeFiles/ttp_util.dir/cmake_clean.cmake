file(REMOVE_RECURSE
  "CMakeFiles/ttp_util.dir/util/bits.cpp.o"
  "CMakeFiles/ttp_util.dir/util/bits.cpp.o.d"
  "CMakeFiles/ttp_util.dir/util/counters.cpp.o"
  "CMakeFiles/ttp_util.dir/util/counters.cpp.o.d"
  "CMakeFiles/ttp_util.dir/util/fixed.cpp.o"
  "CMakeFiles/ttp_util.dir/util/fixed.cpp.o.d"
  "CMakeFiles/ttp_util.dir/util/rng.cpp.o"
  "CMakeFiles/ttp_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/ttp_util.dir/util/table.cpp.o"
  "CMakeFiles/ttp_util.dir/util/table.cpp.o.d"
  "CMakeFiles/ttp_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/ttp_util.dir/util/thread_pool.cpp.o.d"
  "libttp_util.a"
  "libttp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
