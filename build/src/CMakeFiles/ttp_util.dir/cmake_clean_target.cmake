file(REMOVE_RECURSE
  "libttp_util.a"
)
