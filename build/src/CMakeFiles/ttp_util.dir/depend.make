# Empty dependencies file for ttp_util.
# This may be replaced when dependencies are built.
