file(REMOVE_RECURSE
  "CMakeFiles/ttp_net.dir/net/benes.cpp.o"
  "CMakeFiles/ttp_net.dir/net/benes.cpp.o.d"
  "CMakeFiles/ttp_net.dir/net/ccc.cpp.o"
  "CMakeFiles/ttp_net.dir/net/ccc.cpp.o.d"
  "CMakeFiles/ttp_net.dir/net/hypercube.cpp.o"
  "CMakeFiles/ttp_net.dir/net/hypercube.cpp.o.d"
  "CMakeFiles/ttp_net.dir/net/schedule.cpp.o"
  "CMakeFiles/ttp_net.dir/net/schedule.cpp.o.d"
  "libttp_net.a"
  "libttp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
