# Empty compiler generated dependencies file for ttp_net.
# This may be replaced when dependencies are built.
