file(REMOVE_RECURSE
  "libttp_net.a"
)
