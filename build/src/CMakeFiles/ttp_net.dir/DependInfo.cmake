
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/benes.cpp" "src/CMakeFiles/ttp_net.dir/net/benes.cpp.o" "gcc" "src/CMakeFiles/ttp_net.dir/net/benes.cpp.o.d"
  "/root/repo/src/net/ccc.cpp" "src/CMakeFiles/ttp_net.dir/net/ccc.cpp.o" "gcc" "src/CMakeFiles/ttp_net.dir/net/ccc.cpp.o.d"
  "/root/repo/src/net/hypercube.cpp" "src/CMakeFiles/ttp_net.dir/net/hypercube.cpp.o" "gcc" "src/CMakeFiles/ttp_net.dir/net/hypercube.cpp.o.d"
  "/root/repo/src/net/schedule.cpp" "src/CMakeFiles/ttp_net.dir/net/schedule.cpp.o" "gcc" "src/CMakeFiles/ttp_net.dir/net/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ttp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
