# Empty compiler generated dependencies file for ttp_bvm.
# This may be replaced when dependencies are built.
