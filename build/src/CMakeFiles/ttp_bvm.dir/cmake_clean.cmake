file(REMOVE_RECURSE
  "CMakeFiles/ttp_bvm.dir/bvm/assembler.cpp.o"
  "CMakeFiles/ttp_bvm.dir/bvm/assembler.cpp.o.d"
  "CMakeFiles/ttp_bvm.dir/bvm/config.cpp.o"
  "CMakeFiles/ttp_bvm.dir/bvm/config.cpp.o.d"
  "CMakeFiles/ttp_bvm.dir/bvm/instr.cpp.o"
  "CMakeFiles/ttp_bvm.dir/bvm/instr.cpp.o.d"
  "CMakeFiles/ttp_bvm.dir/bvm/io.cpp.o"
  "CMakeFiles/ttp_bvm.dir/bvm/io.cpp.o.d"
  "CMakeFiles/ttp_bvm.dir/bvm/machine.cpp.o"
  "CMakeFiles/ttp_bvm.dir/bvm/machine.cpp.o.d"
  "CMakeFiles/ttp_bvm.dir/bvm/microcode/arith.cpp.o"
  "CMakeFiles/ttp_bvm.dir/bvm/microcode/arith.cpp.o.d"
  "CMakeFiles/ttp_bvm.dir/bvm/microcode/broadcast.cpp.o"
  "CMakeFiles/ttp_bvm.dir/bvm/microcode/broadcast.cpp.o.d"
  "CMakeFiles/ttp_bvm.dir/bvm/microcode/exchange.cpp.o"
  "CMakeFiles/ttp_bvm.dir/bvm/microcode/exchange.cpp.o.d"
  "CMakeFiles/ttp_bvm.dir/bvm/microcode/ids.cpp.o"
  "CMakeFiles/ttp_bvm.dir/bvm/microcode/ids.cpp.o.d"
  "CMakeFiles/ttp_bvm.dir/bvm/microcode/layer.cpp.o"
  "CMakeFiles/ttp_bvm.dir/bvm/microcode/layer.cpp.o.d"
  "CMakeFiles/ttp_bvm.dir/bvm/microcode/normal.cpp.o"
  "CMakeFiles/ttp_bvm.dir/bvm/microcode/normal.cpp.o.d"
  "CMakeFiles/ttp_bvm.dir/bvm/microcode/permute.cpp.o"
  "CMakeFiles/ttp_bvm.dir/bvm/microcode/permute.cpp.o.d"
  "CMakeFiles/ttp_bvm.dir/bvm/microcode/propagate.cpp.o"
  "CMakeFiles/ttp_bvm.dir/bvm/microcode/propagate.cpp.o.d"
  "CMakeFiles/ttp_bvm.dir/bvm/microcode/reduce.cpp.o"
  "CMakeFiles/ttp_bvm.dir/bvm/microcode/reduce.cpp.o.d"
  "libttp_bvm.a"
  "libttp_bvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttp_bvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
