
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bvm/assembler.cpp" "src/CMakeFiles/ttp_bvm.dir/bvm/assembler.cpp.o" "gcc" "src/CMakeFiles/ttp_bvm.dir/bvm/assembler.cpp.o.d"
  "/root/repo/src/bvm/config.cpp" "src/CMakeFiles/ttp_bvm.dir/bvm/config.cpp.o" "gcc" "src/CMakeFiles/ttp_bvm.dir/bvm/config.cpp.o.d"
  "/root/repo/src/bvm/instr.cpp" "src/CMakeFiles/ttp_bvm.dir/bvm/instr.cpp.o" "gcc" "src/CMakeFiles/ttp_bvm.dir/bvm/instr.cpp.o.d"
  "/root/repo/src/bvm/io.cpp" "src/CMakeFiles/ttp_bvm.dir/bvm/io.cpp.o" "gcc" "src/CMakeFiles/ttp_bvm.dir/bvm/io.cpp.o.d"
  "/root/repo/src/bvm/machine.cpp" "src/CMakeFiles/ttp_bvm.dir/bvm/machine.cpp.o" "gcc" "src/CMakeFiles/ttp_bvm.dir/bvm/machine.cpp.o.d"
  "/root/repo/src/bvm/microcode/arith.cpp" "src/CMakeFiles/ttp_bvm.dir/bvm/microcode/arith.cpp.o" "gcc" "src/CMakeFiles/ttp_bvm.dir/bvm/microcode/arith.cpp.o.d"
  "/root/repo/src/bvm/microcode/broadcast.cpp" "src/CMakeFiles/ttp_bvm.dir/bvm/microcode/broadcast.cpp.o" "gcc" "src/CMakeFiles/ttp_bvm.dir/bvm/microcode/broadcast.cpp.o.d"
  "/root/repo/src/bvm/microcode/exchange.cpp" "src/CMakeFiles/ttp_bvm.dir/bvm/microcode/exchange.cpp.o" "gcc" "src/CMakeFiles/ttp_bvm.dir/bvm/microcode/exchange.cpp.o.d"
  "/root/repo/src/bvm/microcode/ids.cpp" "src/CMakeFiles/ttp_bvm.dir/bvm/microcode/ids.cpp.o" "gcc" "src/CMakeFiles/ttp_bvm.dir/bvm/microcode/ids.cpp.o.d"
  "/root/repo/src/bvm/microcode/layer.cpp" "src/CMakeFiles/ttp_bvm.dir/bvm/microcode/layer.cpp.o" "gcc" "src/CMakeFiles/ttp_bvm.dir/bvm/microcode/layer.cpp.o.d"
  "/root/repo/src/bvm/microcode/normal.cpp" "src/CMakeFiles/ttp_bvm.dir/bvm/microcode/normal.cpp.o" "gcc" "src/CMakeFiles/ttp_bvm.dir/bvm/microcode/normal.cpp.o.d"
  "/root/repo/src/bvm/microcode/permute.cpp" "src/CMakeFiles/ttp_bvm.dir/bvm/microcode/permute.cpp.o" "gcc" "src/CMakeFiles/ttp_bvm.dir/bvm/microcode/permute.cpp.o.d"
  "/root/repo/src/bvm/microcode/propagate.cpp" "src/CMakeFiles/ttp_bvm.dir/bvm/microcode/propagate.cpp.o" "gcc" "src/CMakeFiles/ttp_bvm.dir/bvm/microcode/propagate.cpp.o.d"
  "/root/repo/src/bvm/microcode/reduce.cpp" "src/CMakeFiles/ttp_bvm.dir/bvm/microcode/reduce.cpp.o" "gcc" "src/CMakeFiles/ttp_bvm.dir/bvm/microcode/reduce.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ttp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ttp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
