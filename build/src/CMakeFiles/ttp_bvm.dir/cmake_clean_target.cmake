file(REMOVE_RECURSE
  "libttp_bvm.a"
)
