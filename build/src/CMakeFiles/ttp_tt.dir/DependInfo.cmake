
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tt/analysis.cpp" "src/CMakeFiles/ttp_tt.dir/tt/analysis.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/analysis.cpp.o.d"
  "/root/repo/src/tt/binary_testing.cpp" "src/CMakeFiles/ttp_tt.dir/tt/binary_testing.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/binary_testing.cpp.o.d"
  "/root/repo/src/tt/generator.cpp" "src/CMakeFiles/ttp_tt.dir/tt/generator.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/generator.cpp.o.d"
  "/root/repo/src/tt/greedy.cpp" "src/CMakeFiles/ttp_tt.dir/tt/greedy.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/greedy.cpp.o.d"
  "/root/repo/src/tt/instance.cpp" "src/CMakeFiles/ttp_tt.dir/tt/instance.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/instance.cpp.o.d"
  "/root/repo/src/tt/protocol.cpp" "src/CMakeFiles/ttp_tt.dir/tt/protocol.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/protocol.cpp.o.d"
  "/root/repo/src/tt/report.cpp" "src/CMakeFiles/ttp_tt.dir/tt/report.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/report.cpp.o.d"
  "/root/repo/src/tt/serialize.cpp" "src/CMakeFiles/ttp_tt.dir/tt/serialize.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/serialize.cpp.o.d"
  "/root/repo/src/tt/sizing.cpp" "src/CMakeFiles/ttp_tt.dir/tt/sizing.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/sizing.cpp.o.d"
  "/root/repo/src/tt/solver.cpp" "src/CMakeFiles/ttp_tt.dir/tt/solver.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/solver.cpp.o.d"
  "/root/repo/src/tt/solver_bnb.cpp" "src/CMakeFiles/ttp_tt.dir/tt/solver_bnb.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/solver_bnb.cpp.o.d"
  "/root/repo/src/tt/solver_bvm.cpp" "src/CMakeFiles/ttp_tt.dir/tt/solver_bvm.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/solver_bvm.cpp.o.d"
  "/root/repo/src/tt/solver_ccc.cpp" "src/CMakeFiles/ttp_tt.dir/tt/solver_ccc.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/solver_ccc.cpp.o.d"
  "/root/repo/src/tt/solver_exhaustive.cpp" "src/CMakeFiles/ttp_tt.dir/tt/solver_exhaustive.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/solver_exhaustive.cpp.o.d"
  "/root/repo/src/tt/solver_hypercube.cpp" "src/CMakeFiles/ttp_tt.dir/tt/solver_hypercube.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/solver_hypercube.cpp.o.d"
  "/root/repo/src/tt/solver_sequential.cpp" "src/CMakeFiles/ttp_tt.dir/tt/solver_sequential.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/solver_sequential.cpp.o.d"
  "/root/repo/src/tt/solver_state_parallel.cpp" "src/CMakeFiles/ttp_tt.dir/tt/solver_state_parallel.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/solver_state_parallel.cpp.o.d"
  "/root/repo/src/tt/solver_threads.cpp" "src/CMakeFiles/ttp_tt.dir/tt/solver_threads.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/solver_threads.cpp.o.d"
  "/root/repo/src/tt/transform.cpp" "src/CMakeFiles/ttp_tt.dir/tt/transform.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/transform.cpp.o.d"
  "/root/repo/src/tt/tree.cpp" "src/CMakeFiles/ttp_tt.dir/tt/tree.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/tree.cpp.o.d"
  "/root/repo/src/tt/validate.cpp" "src/CMakeFiles/ttp_tt.dir/tt/validate.cpp.o" "gcc" "src/CMakeFiles/ttp_tt.dir/tt/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ttp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ttp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ttp_bvm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
