# Empty compiler generated dependencies file for ttp_tt.
# This may be replaced when dependencies are built.
