file(REMOVE_RECURSE
  "libttp_tt.a"
)
