# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_e03_fig45_processor_id.
