file(REMOVE_RECURSE
  "CMakeFiles/bench_e03_fig45_processor_id.dir/bench_e03_fig45_processor_id.cpp.o"
  "CMakeFiles/bench_e03_fig45_processor_id.dir/bench_e03_fig45_processor_id.cpp.o.d"
  "bench_e03_fig45_processor_id"
  "bench_e03_fig45_processor_id.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e03_fig45_processor_id.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
