# Empty compiler generated dependencies file for bench_e03_fig45_processor_id.
# This may be replaced when dependencies are built.
