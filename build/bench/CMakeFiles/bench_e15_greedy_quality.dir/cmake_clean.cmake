file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_greedy_quality.dir/bench_e15_greedy_quality.cpp.o"
  "CMakeFiles/bench_e15_greedy_quality.dir/bench_e15_greedy_quality.cpp.o.d"
  "bench_e15_greedy_quality"
  "bench_e15_greedy_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_greedy_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
