# Empty compiler generated dependencies file for bench_e15_greedy_quality.
# This may be replaced when dependencies are built.
