# Empty compiler generated dependencies file for bench_e08_ccc_slowdown.
# This may be replaced when dependencies are built.
