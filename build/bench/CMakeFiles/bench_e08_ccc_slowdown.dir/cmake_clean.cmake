file(REMOVE_RECURSE
  "CMakeFiles/bench_e08_ccc_slowdown.dir/bench_e08_ccc_slowdown.cpp.o"
  "CMakeFiles/bench_e08_ccc_slowdown.dir/bench_e08_ccc_slowdown.cpp.o.d"
  "bench_e08_ccc_slowdown"
  "bench_e08_ccc_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e08_ccc_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
