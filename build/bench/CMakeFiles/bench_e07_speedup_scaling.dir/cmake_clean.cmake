file(REMOVE_RECURSE
  "CMakeFiles/bench_e07_speedup_scaling.dir/bench_e07_speedup_scaling.cpp.o"
  "CMakeFiles/bench_e07_speedup_scaling.dir/bench_e07_speedup_scaling.cpp.o.d"
  "bench_e07_speedup_scaling"
  "bench_e07_speedup_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e07_speedup_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
