# Empty compiler generated dependencies file for bench_e07_speedup_scaling.
# This may be replaced when dependencies are built.
