# Empty dependencies file for bench_e12_threads_wallclock.
# This may be replaced when dependencies are built.
