file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_threads_wallclock.dir/bench_e12_threads_wallclock.cpp.o"
  "CMakeFiles/bench_e12_threads_wallclock.dir/bench_e12_threads_wallclock.cpp.o.d"
  "bench_e12_threads_wallclock"
  "bench_e12_threads_wallclock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_threads_wallclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
