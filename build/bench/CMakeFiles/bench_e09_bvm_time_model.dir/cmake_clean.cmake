file(REMOVE_RECURSE
  "CMakeFiles/bench_e09_bvm_time_model.dir/bench_e09_bvm_time_model.cpp.o"
  "CMakeFiles/bench_e09_bvm_time_model.dir/bench_e09_bvm_time_model.cpp.o.d"
  "bench_e09_bvm_time_model"
  "bench_e09_bvm_time_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e09_bvm_time_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
