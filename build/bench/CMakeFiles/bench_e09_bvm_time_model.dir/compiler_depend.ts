# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_e09_bvm_time_model.
