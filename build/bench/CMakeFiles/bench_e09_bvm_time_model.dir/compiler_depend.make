# Empty compiler generated dependencies file for bench_e09_bvm_time_model.
# This may be replaced when dependencies are built.
