# Empty compiler generated dependencies file for bench_e11_headline_speedup.
# This may be replaced when dependencies are built.
