file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_headline_speedup.dir/bench_e11_headline_speedup.cpp.o"
  "CMakeFiles/bench_e11_headline_speedup.dir/bench_e11_headline_speedup.cpp.o.d"
  "bench_e11_headline_speedup"
  "bench_e11_headline_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_headline_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
