file(REMOVE_RECURSE
  "CMakeFiles/bench_e05_fig7_min_ascend.dir/bench_e05_fig7_min_ascend.cpp.o"
  "CMakeFiles/bench_e05_fig7_min_ascend.dir/bench_e05_fig7_min_ascend.cpp.o.d"
  "bench_e05_fig7_min_ascend"
  "bench_e05_fig7_min_ascend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e05_fig7_min_ascend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
