# Empty dependencies file for bench_e05_fig7_min_ascend.
# This may be replaced when dependencies are built.
