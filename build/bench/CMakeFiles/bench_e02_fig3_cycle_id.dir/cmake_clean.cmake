file(REMOVE_RECURSE
  "CMakeFiles/bench_e02_fig3_cycle_id.dir/bench_e02_fig3_cycle_id.cpp.o"
  "CMakeFiles/bench_e02_fig3_cycle_id.dir/bench_e02_fig3_cycle_id.cpp.o.d"
  "bench_e02_fig3_cycle_id"
  "bench_e02_fig3_cycle_id.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e02_fig3_cycle_id.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
