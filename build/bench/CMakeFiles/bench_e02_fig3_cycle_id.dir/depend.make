# Empty dependencies file for bench_e02_fig3_cycle_id.
# This may be replaced when dependencies are built.
