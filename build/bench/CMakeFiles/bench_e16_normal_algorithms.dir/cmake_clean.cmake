file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_normal_algorithms.dir/bench_e16_normal_algorithms.cpp.o"
  "CMakeFiles/bench_e16_normal_algorithms.dir/bench_e16_normal_algorithms.cpp.o.d"
  "bench_e16_normal_algorithms"
  "bench_e16_normal_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_normal_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
