# Empty compiler generated dependencies file for bench_e16_normal_algorithms.
# This may be replaced when dependencies are built.
