# Empty dependencies file for bench_e13_pipeline_ablation.
# This may be replaced when dependencies are built.
