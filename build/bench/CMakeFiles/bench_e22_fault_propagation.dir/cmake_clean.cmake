file(REMOVE_RECURSE
  "CMakeFiles/bench_e22_fault_propagation.dir/bench_e22_fault_propagation.cpp.o"
  "CMakeFiles/bench_e22_fault_propagation.dir/bench_e22_fault_propagation.cpp.o.d"
  "bench_e22_fault_propagation"
  "bench_e22_fault_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e22_fault_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
