# Empty dependencies file for bench_e22_fault_propagation.
# This may be replaced when dependencies are built.
