# Empty dependencies file for bench_e10_feasibility.
# This may be replaced when dependencies are built.
