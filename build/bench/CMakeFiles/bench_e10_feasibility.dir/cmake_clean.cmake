file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_feasibility.dir/bench_e10_feasibility.cpp.o"
  "CMakeFiles/bench_e10_feasibility.dir/bench_e10_feasibility.cpp.o.d"
  "bench_e10_feasibility"
  "bench_e10_feasibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_feasibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
