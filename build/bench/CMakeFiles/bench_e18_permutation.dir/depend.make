# Empty dependencies file for bench_e18_permutation.
# This may be replaced when dependencies are built.
