
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e18_permutation.cpp" "bench/CMakeFiles/bench_e18_permutation.dir/bench_e18_permutation.cpp.o" "gcc" "bench/CMakeFiles/bench_e18_permutation.dir/bench_e18_permutation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ttp_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ttp_bvm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ttp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ttp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
