file(REMOVE_RECURSE
  "CMakeFiles/bench_e18_permutation.dir/bench_e18_permutation.cpp.o"
  "CMakeFiles/bench_e18_permutation.dir/bench_e18_permutation.cpp.o.d"
  "bench_e18_permutation"
  "bench_e18_permutation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e18_permutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
