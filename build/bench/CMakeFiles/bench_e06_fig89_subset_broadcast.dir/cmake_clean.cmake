file(REMOVE_RECURSE
  "CMakeFiles/bench_e06_fig89_subset_broadcast.dir/bench_e06_fig89_subset_broadcast.cpp.o"
  "CMakeFiles/bench_e06_fig89_subset_broadcast.dir/bench_e06_fig89_subset_broadcast.cpp.o.d"
  "bench_e06_fig89_subset_broadcast"
  "bench_e06_fig89_subset_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e06_fig89_subset_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
