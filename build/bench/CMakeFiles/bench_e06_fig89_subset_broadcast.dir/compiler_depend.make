# Empty compiler generated dependencies file for bench_e06_fig89_subset_broadcast.
# This may be replaced when dependencies are built.
