# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_e21_simulator_throughput.
