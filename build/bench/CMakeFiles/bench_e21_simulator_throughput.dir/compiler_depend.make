# Empty compiler generated dependencies file for bench_e21_simulator_throughput.
# This may be replaced when dependencies are built.
