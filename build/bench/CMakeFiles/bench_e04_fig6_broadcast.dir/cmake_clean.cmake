file(REMOVE_RECURSE
  "CMakeFiles/bench_e04_fig6_broadcast.dir/bench_e04_fig6_broadcast.cpp.o"
  "CMakeFiles/bench_e04_fig6_broadcast.dir/bench_e04_fig6_broadcast.cpp.o.d"
  "bench_e04_fig6_broadcast"
  "bench_e04_fig6_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e04_fig6_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
