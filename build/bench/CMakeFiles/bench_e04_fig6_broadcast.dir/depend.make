# Empty dependencies file for bench_e04_fig6_broadcast.
# This may be replaced when dependencies are built.
