# Empty compiler generated dependencies file for bench_e20_processor_time_tradeoff.
# This may be replaced when dependencies are built.
