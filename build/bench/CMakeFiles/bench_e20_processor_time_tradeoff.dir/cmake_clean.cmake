file(REMOVE_RECURSE
  "CMakeFiles/bench_e20_processor_time_tradeoff.dir/bench_e20_processor_time_tradeoff.cpp.o"
  "CMakeFiles/bench_e20_processor_time_tradeoff.dir/bench_e20_processor_time_tradeoff.cpp.o.d"
  "bench_e20_processor_time_tradeoff"
  "bench_e20_processor_time_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e20_processor_time_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
