file(REMOVE_RECURSE
  "CMakeFiles/bench_e01_fig1_tree.dir/bench_e01_fig1_tree.cpp.o"
  "CMakeFiles/bench_e01_fig1_tree.dir/bench_e01_fig1_tree.cpp.o.d"
  "bench_e01_fig1_tree"
  "bench_e01_fig1_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e01_fig1_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
