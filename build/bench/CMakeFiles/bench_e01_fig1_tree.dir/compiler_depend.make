# Empty compiler generated dependencies file for bench_e01_fig1_tree.
# This may be replaced when dependencies are built.
