# Empty dependencies file for bench_e14_layer_control.
# This may be replaced when dependencies are built.
