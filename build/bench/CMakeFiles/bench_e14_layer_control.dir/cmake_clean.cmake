file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_layer_control.dir/bench_e14_layer_control.cpp.o"
  "CMakeFiles/bench_e14_layer_control.dir/bench_e14_layer_control.cpp.o.d"
  "bench_e14_layer_control"
  "bench_e14_layer_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_layer_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
