# Empty dependencies file for bench_e19_flagship.
# This may be replaced when dependencies are built.
