file(REMOVE_RECURSE
  "CMakeFiles/bench_e19_flagship.dir/bench_e19_flagship.cpp.o"
  "CMakeFiles/bench_e19_flagship.dir/bench_e19_flagship.cpp.o.d"
  "bench_e19_flagship"
  "bench_e19_flagship.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e19_flagship.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
