file(REMOVE_RECURSE
  "CMakeFiles/bench_e17_bnb_reachability.dir/bench_e17_bnb_reachability.cpp.o"
  "CMakeFiles/bench_e17_bnb_reachability.dir/bench_e17_bnb_reachability.cpp.o.d"
  "bench_e17_bnb_reachability"
  "bench_e17_bnb_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_bnb_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
