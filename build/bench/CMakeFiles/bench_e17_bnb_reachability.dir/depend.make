# Empty dependencies file for bench_e17_bnb_reachability.
# This may be replaced when dependencies are built.
