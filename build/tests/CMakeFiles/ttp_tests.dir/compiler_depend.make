# Empty compiler generated dependencies file for ttp_tests.
# This may be replaced when dependencies are built.
