
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_all_solvers.cpp" "tests/CMakeFiles/ttp_tests.dir/test_all_solvers.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_all_solvers.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/ttp_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_benes.cpp" "tests/CMakeFiles/ttp_tests.dir/test_benes.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_benes.cpp.o.d"
  "/root/repo/tests/test_binary_testing.cpp" "tests/CMakeFiles/ttp_tests.dir/test_binary_testing.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_binary_testing.cpp.o.d"
  "/root/repo/tests/test_bits.cpp" "tests/CMakeFiles/ttp_tests.dir/test_bits.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_bits.cpp.o.d"
  "/root/repo/tests/test_bitvec.cpp" "tests/CMakeFiles/ttp_tests.dir/test_bitvec.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_bitvec.cpp.o.d"
  "/root/repo/tests/test_bvm_arith.cpp" "tests/CMakeFiles/ttp_tests.dir/test_bvm_arith.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_bvm_arith.cpp.o.d"
  "/root/repo/tests/test_bvm_assembler.cpp" "tests/CMakeFiles/ttp_tests.dir/test_bvm_assembler.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_bvm_assembler.cpp.o.d"
  "/root/repo/tests/test_bvm_differential.cpp" "tests/CMakeFiles/ttp_tests.dir/test_bvm_differential.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_bvm_differential.cpp.o.d"
  "/root/repo/tests/test_bvm_exchange.cpp" "tests/CMakeFiles/ttp_tests.dir/test_bvm_exchange.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_bvm_exchange.cpp.o.d"
  "/root/repo/tests/test_bvm_flow.cpp" "tests/CMakeFiles/ttp_tests.dir/test_bvm_flow.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_bvm_flow.cpp.o.d"
  "/root/repo/tests/test_bvm_ids.cpp" "tests/CMakeFiles/ttp_tests.dir/test_bvm_ids.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_bvm_ids.cpp.o.d"
  "/root/repo/tests/test_bvm_io.cpp" "tests/CMakeFiles/ttp_tests.dir/test_bvm_io.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_bvm_io.cpp.o.d"
  "/root/repo/tests/test_bvm_layer.cpp" "tests/CMakeFiles/ttp_tests.dir/test_bvm_layer.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_bvm_layer.cpp.o.d"
  "/root/repo/tests/test_bvm_machine.cpp" "tests/CMakeFiles/ttp_tests.dir/test_bvm_machine.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_bvm_machine.cpp.o.d"
  "/root/repo/tests/test_bvm_matrix.cpp" "tests/CMakeFiles/ttp_tests.dir/test_bvm_matrix.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_bvm_matrix.cpp.o.d"
  "/root/repo/tests/test_bvm_microcode_fuzz.cpp" "tests/CMakeFiles/ttp_tests.dir/test_bvm_microcode_fuzz.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_bvm_microcode_fuzz.cpp.o.d"
  "/root/repo/tests/test_bvm_reduce.cpp" "tests/CMakeFiles/ttp_tests.dir/test_bvm_reduce.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_bvm_reduce.cpp.o.d"
  "/root/repo/tests/test_bvm_replay.cpp" "tests/CMakeFiles/ttp_tests.dir/test_bvm_replay.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_bvm_replay.cpp.o.d"
  "/root/repo/tests/test_bvm_wave.cpp" "tests/CMakeFiles/ttp_tests.dir/test_bvm_wave.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_bvm_wave.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/ttp_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_example_data.cpp" "tests/CMakeFiles/ttp_tests.dir/test_example_data.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_example_data.cpp.o.d"
  "/root/repo/tests/test_fault_injection.cpp" "tests/CMakeFiles/ttp_tests.dir/test_fault_injection.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_fault_injection.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/ttp_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_instance.cpp" "tests/CMakeFiles/ttp_tests.dir/test_instance.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_instance.cpp.o.d"
  "/root/repo/tests/test_net_machines.cpp" "tests/CMakeFiles/ttp_tests.dir/test_net_machines.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_net_machines.cpp.o.d"
  "/root/repo/tests/test_normal_algorithms.cpp" "tests/CMakeFiles/ttp_tests.dir/test_normal_algorithms.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_normal_algorithms.cpp.o.d"
  "/root/repo/tests/test_parser_fuzz.cpp" "tests/CMakeFiles/ttp_tests.dir/test_parser_fuzz.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_parser_fuzz.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/ttp_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_protocol.cpp" "tests/CMakeFiles/ttp_tests.dir/test_protocol.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_protocol.cpp.o.d"
  "/root/repo/tests/test_report_misc.cpp" "tests/CMakeFiles/ttp_tests.dir/test_report_misc.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_report_misc.cpp.o.d"
  "/root/repo/tests/test_schedule.cpp" "tests/CMakeFiles/ttp_tests.dir/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_schedule.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/ttp_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_sizing.cpp" "tests/CMakeFiles/ttp_tests.dir/test_sizing.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_sizing.cpp.o.d"
  "/root/repo/tests/test_solver_bnb.cpp" "tests/CMakeFiles/ttp_tests.dir/test_solver_bnb.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_solver_bnb.cpp.o.d"
  "/root/repo/tests/test_solver_bvm.cpp" "tests/CMakeFiles/ttp_tests.dir/test_solver_bvm.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_solver_bvm.cpp.o.d"
  "/root/repo/tests/test_solver_machines.cpp" "tests/CMakeFiles/ttp_tests.dir/test_solver_machines.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_solver_machines.cpp.o.d"
  "/root/repo/tests/test_solver_state_parallel.cpp" "tests/CMakeFiles/ttp_tests.dir/test_solver_state_parallel.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_solver_state_parallel.cpp.o.d"
  "/root/repo/tests/test_solvers_host.cpp" "tests/CMakeFiles/ttp_tests.dir/test_solvers_host.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_solvers_host.cpp.o.d"
  "/root/repo/tests/test_transform.cpp" "tests/CMakeFiles/ttp_tests.dir/test_transform.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_transform.cpp.o.d"
  "/root/repo/tests/test_truth_tables.cpp" "tests/CMakeFiles/ttp_tests.dir/test_truth_tables.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_truth_tables.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/ttp_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/ttp_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ttp_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ttp_bvm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ttp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ttp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
