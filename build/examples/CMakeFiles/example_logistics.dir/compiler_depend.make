# Empty compiler generated dependencies file for example_logistics.
# This may be replaced when dependencies are built.
