file(REMOVE_RECURSE
  "CMakeFiles/example_logistics.dir/logistics.cpp.o"
  "CMakeFiles/example_logistics.dir/logistics.cpp.o.d"
  "example_logistics"
  "example_logistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_logistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
