file(REMOVE_RECURSE
  "CMakeFiles/example_biology_key.dir/biology_key.cpp.o"
  "CMakeFiles/example_biology_key.dir/biology_key.cpp.o.d"
  "example_biology_key"
  "example_biology_key.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_biology_key.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
