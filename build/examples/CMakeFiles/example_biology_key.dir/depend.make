# Empty dependencies file for example_biology_key.
# This may be replaced when dependencies are built.
