file(REMOVE_RECURSE
  "CMakeFiles/example_ttp_solve.dir/ttp_solve.cpp.o"
  "CMakeFiles/example_ttp_solve.dir/ttp_solve.cpp.o.d"
  "example_ttp_solve"
  "example_ttp_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ttp_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
