# Empty dependencies file for example_ttp_solve.
# This may be replaced when dependencies are built.
