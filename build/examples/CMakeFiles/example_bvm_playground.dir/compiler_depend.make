# Empty compiler generated dependencies file for example_bvm_playground.
# This may be replaced when dependencies are built.
