file(REMOVE_RECURSE
  "CMakeFiles/example_bvm_playground.dir/bvm_playground.cpp.o"
  "CMakeFiles/example_bvm_playground.dir/bvm_playground.cpp.o.d"
  "example_bvm_playground"
  "example_bvm_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bvm_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
