# Empty compiler generated dependencies file for example_machine_fault.
# This may be replaced when dependencies are built.
