file(REMOVE_RECURSE
  "CMakeFiles/example_machine_fault.dir/machine_fault.cpp.o"
  "CMakeFiles/example_machine_fault.dir/machine_fault.cpp.o.d"
  "example_machine_fault"
  "example_machine_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_machine_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
