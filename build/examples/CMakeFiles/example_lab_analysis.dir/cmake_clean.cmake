file(REMOVE_RECURSE
  "CMakeFiles/example_lab_analysis.dir/lab_analysis.cpp.o"
  "CMakeFiles/example_lab_analysis.dir/lab_analysis.cpp.o.d"
  "example_lab_analysis"
  "example_lab_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lab_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
