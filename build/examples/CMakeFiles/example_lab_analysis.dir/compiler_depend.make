# Empty compiler generated dependencies file for example_lab_analysis.
# This may be replaced when dependencies are built.
