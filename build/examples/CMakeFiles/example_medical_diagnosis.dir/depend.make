# Empty dependencies file for example_medical_diagnosis.
# This may be replaced when dependencies are built.
