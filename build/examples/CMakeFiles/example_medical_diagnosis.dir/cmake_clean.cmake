file(REMOVE_RECURSE
  "CMakeFiles/example_medical_diagnosis.dir/medical_diagnosis.cpp.o"
  "CMakeFiles/example_medical_diagnosis.dir/medical_diagnosis.cpp.o.d"
  "example_medical_diagnosis"
  "example_medical_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_medical_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
