# Empty dependencies file for example_bvm_run.
# This may be replaced when dependencies are built.
