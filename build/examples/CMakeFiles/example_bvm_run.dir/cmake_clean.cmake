file(REMOVE_RECURSE
  "CMakeFiles/example_bvm_run.dir/bvm_run.cpp.o"
  "CMakeFiles/example_bvm_run.dir/bvm_run.cpp.o.d"
  "example_bvm_run"
  "example_bvm_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bvm_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
