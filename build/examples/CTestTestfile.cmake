# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_biology_key "/root/repo/build/examples/example_biology_key")
set_tests_properties(example_biology_key PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bvm_playground "/root/repo/build/examples/example_bvm_playground")
set_tests_properties(example_bvm_playground PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bvm_run "/root/repo/build/examples/example_bvm_run")
set_tests_properties(example_bvm_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lab_analysis "/root/repo/build/examples/example_lab_analysis")
set_tests_properties(example_lab_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_logistics "/root/repo/build/examples/example_logistics")
set_tests_properties(example_logistics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_machine_fault "/root/repo/build/examples/example_machine_fault")
set_tests_properties(example_machine_fault PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_medical_diagnosis "/root/repo/build/examples/example_medical_diagnosis")
set_tests_properties(example_medical_diagnosis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ttp_solve "/root/repo/build/examples/example_ttp_solve")
set_tests_properties(example_ttp_solve PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
